"""Deterministic partitioning of the synthesis enumeration space.

A :class:`ShardSpec` names one independent work unit of a synthesis run
by striding the two outer loops of program enumeration:

* **skeleton stride** — the global base-skeleton index (across all thread
  counts) is taken modulo ``skeleton_count``; a shard owns the indices
  congruent to ``skeleton_index``.  Skeleton enumeration is cheap relative
  to the remap/TLB fan-out and witness checking behind each skeleton, so
  every shard re-enumerates skeletons but expands only its own.
* **fan-out stride** — within each owned skeleton, the (remap placement ×
  TLB vector) expansion index is taken modulo ``fanout_count``.  Splitting
  the fan-out lets the planner cut finer than one skeleton when a few
  deep skeletons dominate the bound (their fan-out grows combinatorially
  with PTE-write count and thread count).

Shards are disjoint and jointly exhaustive by construction: every program
has exactly one ``(skeleton_index % K, fanout_index % F)`` residue.  Order
keys assigned by :func:`repro.synth.enumerate_programs_with_order` are
identical no matter which shard enumerates a program, which is what lets
:mod:`repro.orchestrate.merge` reconstruct serial enumeration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import SynthesisError
from ..mtm import Program
from ..synth import SynthesisConfig, enumerate_programs_with_order

#: Shards per worker when the planner is free to choose: oversubscription
#: smooths out skeletons with very uneven fan-out (static stride keeps
#: determinism; extra shards give the pool work-stealing slack).
DEFAULT_OVERSUBSCRIPTION = 4


@dataclass(frozen=True)
class ShardSpec:
    """One work unit: a (skeleton stride, fan-out stride) residue class."""

    skeleton_index: int
    skeleton_count: int
    fanout_index: int = 0
    fanout_count: int = 1

    def __post_init__(self) -> None:
        if self.skeleton_count < 1 or self.fanout_count < 1:
            raise SynthesisError("shard stride counts must be positive")
        if not 0 <= self.skeleton_index < self.skeleton_count:
            raise SynthesisError(
                f"skeleton_index {self.skeleton_index} outside "
                f"[0, {self.skeleton_count})"
            )
        if not 0 <= self.fanout_index < self.fanout_count:
            raise SynthesisError(
                f"fanout_index {self.fanout_index} outside "
                f"[0, {self.fanout_count})"
            )

    @property
    def label(self) -> str:
        text = f"s{self.skeleton_index}/{self.skeleton_count}"
        if self.fanout_count > 1:
            text += f"+f{self.fanout_index}/{self.fanout_count}"
        return text

    def describe(self) -> str:
        return (
            f"skeletons ≡ {self.skeleton_index} (mod {self.skeleton_count})"
            + (
                f", fan-out ≡ {self.fanout_index} (mod {self.fanout_count})"
                if self.fanout_count > 1
                else ""
            )
        )


def plan_shards(
    jobs: int,
    shard_count: int | None = None,
    fanout_split: int = 1,
) -> list[ShardSpec]:
    """Plan the work units for a run with ``jobs`` workers.

    ``shard_count`` overrides the skeleton-stride width (default:
    ``jobs × DEFAULT_OVERSUBSCRIPTION`` when parallel, 1 when serial).
    ``fanout_split`` additionally splits every skeleton's fan-out into
    that many strides — useful at deep bounds where single skeletons
    dominate.
    """
    if jobs < 1:
        raise SynthesisError(f"jobs must be positive, got {jobs}")
    if fanout_split < 1:
        raise SynthesisError(f"fanout_split must be positive, got {fanout_split}")
    if shard_count is None:
        shard_count = 1 if jobs == 1 else jobs * DEFAULT_OVERSUBSCRIPTION
    if shard_count < 1:
        raise SynthesisError(f"shard_count must be positive, got {shard_count}")
    return [
        ShardSpec(skeleton, shard_count, fanout, fanout_split)
        for skeleton in range(shard_count)
        for fanout in range(fanout_split)
    ]


def plan_pair_shards(
    jobs: int,
    pair_count: int,
    shard_count: int | None = None,
    fanout_split: int = 1,
) -> list[ShardSpec]:
    """Plan the per-pair work units of an all-pairs conformance run.

    With ``pair_count`` model pairs each running the same bounded
    enumeration, pair-level fan-out already provides most of the
    parallelism; splitting every pair into the full single-run shard plan
    would flood the pool with tiny tasks.  The planner therefore sizes
    the per-pair stride so that *total* work units across all pairs land
    near the usual ``jobs × DEFAULT_OVERSUBSCRIPTION`` target.  An
    explicit ``shard_count`` overrides the heuristic (every pair uses the
    same stride, keeping merges deterministic).
    """
    if pair_count < 1:
        raise SynthesisError(f"pair_count must be positive, got {pair_count}")
    if shard_count is None:
        if jobs == 1:
            shard_count = 1
        else:
            target = jobs * DEFAULT_OVERSUBSCRIPTION
            shard_count = max(1, -(-target // pair_count))  # ceil division
    return plan_shards(jobs, shard_count=shard_count, fanout_split=fanout_split)


def shard_programs(
    config: SynthesisConfig, spec: ShardSpec
) -> Iterator[tuple[tuple[int, int], Program]]:
    """The shard's slice of the ordered program stream."""
    skeleton_filter = (
        None
        if spec.skeleton_count == 1
        else lambda index: index % spec.skeleton_count == spec.skeleton_index
    )
    fanout_filter = (
        None
        if spec.fanout_count == 1
        else lambda index: index % spec.fanout_count == spec.fanout_index
    )
    return enumerate_programs_with_order(
        config, skeleton_filter=skeleton_filter, fanout_filter=fanout_filter
    )

"""Thin setup.py shim.

The project is fully described by pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation`` (or ``python setup.py develop``)
works in offline environments that lack the ``wheel`` package required for
PEP 660 editable installs.

Set ``REPRO_BUILD_ACCEL=1`` to also compile the optional
``repro.sat._accel`` C extension during the install.  It is opt-in (and
marked ``optional``, so a missing compiler never fails the install)
because the pure-Python solver cores are the reference implementation —
the extension only accelerates them.  After an install without it, build
in place with ``python -m repro.sat.build_accel``.
"""

import os

from setuptools import Extension, setup

ext_modules = []
if os.environ.get("REPRO_BUILD_ACCEL"):
    ext_modules.append(
        Extension(
            "repro.sat._accel",
            sources=["src/repro/sat/_accel.c"],
            optional=True,
        )
    )

setup(ext_modules=ext_modules)

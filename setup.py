"""Thin setup.py shim.

The project is fully described by pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation`` (or ``python setup.py develop``)
works in offline environments that lack the ``wheel`` package required for
PEP 660 editable installs.
"""

from setuptools import setup

setup()

"""Unit + property tests for the hash-consed boolean circuit builder.

The builder's simplifications (constant folding, negation involution,
flattening, complement detection) must never change a circuit's semantics
— checked against a naive evaluator over random circuits.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.boolean import (
    FALSE,
    TRUE,
    BAnd,
    BNot,
    BOr,
    BoolBuilder,
    BVar,
    evaluate_node,
)


class TestSimplifications:
    def setup_method(self) -> None:
        self.b = BoolBuilder()

    def test_constant_folding(self) -> None:
        v = self.b.var(1)
        assert self.b.and_([TRUE, v]) is v
        assert self.b.and_([FALSE, v]) is FALSE
        assert self.b.or_([FALSE, v]) is v
        assert self.b.or_([TRUE, v]) is TRUE

    def test_empty_operands(self) -> None:
        assert self.b.and_([]) is TRUE
        assert self.b.or_([]) is FALSE

    def test_negation_involution(self) -> None:
        v = self.b.var(1)
        assert self.b.not_(self.b.not_(v)) is v
        assert self.b.not_(TRUE) is FALSE
        assert self.b.not_(FALSE) is TRUE

    def test_complement_detection(self) -> None:
        v = self.b.var(1)
        assert self.b.and_([v, self.b.not_(v)]) is FALSE
        assert self.b.or_([v, self.b.not_(v)]) is TRUE

    def test_flattening(self) -> None:
        a, b, c = (self.b.var(i) for i in (1, 2, 3))
        nested = self.b.and_([self.b.and_([a, b]), c])
        assert isinstance(nested, BAnd)
        assert set(nested.args) == {a, b, c}

    def test_duplicates_collapsed(self) -> None:
        v = self.b.var(1)
        assert self.b.and_([v, v]) is v
        assert self.b.or_([v, v, v]) is v

    def test_interning(self) -> None:
        a, b = self.b.var(1), self.b.var(2)
        first = self.b.and_([a, b])
        second = self.b.and_([a, b])
        assert first is second

    def test_implies_and_iff(self) -> None:
        a, b = self.b.var(1), self.b.var(2)
        assignment = {1: True, 2: False}
        assert evaluate_node(self.b.implies(a, b), assignment) is False
        assert evaluate_node(self.b.iff(a, a), assignment) is True


# ----------------------------------------------------------------------
# Property: builder output is semantically equal to the naive formula.
# ----------------------------------------------------------------------
NUM_VARS = 4


@st.composite
def circuits(draw, depth: int = 3):
    """Returns (node-description) trees independent of any builder."""
    if depth == 0 or draw(st.booleans()):
        return ("var", draw(st.integers(min_value=1, max_value=NUM_VARS)))
    kind = draw(st.sampled_from(["and", "or", "not", "const"]))
    if kind == "const":
        return ("const", draw(st.booleans()))
    if kind == "not":
        return ("not", draw(circuits(depth=depth - 1)))
    children = draw(
        st.lists(circuits(depth=depth - 1), min_size=0, max_size=3)
    )
    return (kind, children)


def build(tree, builder: BoolBuilder):
    tag = tree[0]
    if tag == "var":
        return builder.var(tree[1])
    if tag == "const":
        return TRUE if tree[1] else FALSE
    if tag == "not":
        return builder.not_(build(tree[1], builder))
    children = [build(c, builder) for c in tree[1]]
    return builder.and_(children) if tag == "and" else builder.or_(children)


def naive_eval(tree, assignment) -> bool:
    tag = tree[0]
    if tag == "var":
        return assignment[tree[1]]
    if tag == "const":
        return tree[1]
    if tag == "not":
        return not naive_eval(tree[1], assignment)
    values = [naive_eval(c, assignment) for c in tree[1]]
    return all(values) if tag == "and" else any(values)


@given(circuits(), st.lists(st.booleans(), min_size=NUM_VARS, max_size=NUM_VARS))
@settings(max_examples=200, deadline=None)
def test_builder_preserves_semantics(tree, values) -> None:
    assignment = {i + 1: v for i, v in enumerate(values)}
    node = build(tree, BoolBuilder())
    assert evaluate_node(node, assignment) == naive_eval(tree, assignment)


@given(circuits())
@settings(max_examples=100, deadline=None)
def test_no_nested_same_kind_nodes(tree) -> None:
    # Flattening invariant: an AND never directly contains an AND, etc.
    node = build(tree, BoolBuilder())

    def check(n) -> None:
        if isinstance(n, BAnd):
            assert all(not isinstance(a, BAnd) for a in n.args)
            for a in n.args:
                check(a)
        elif isinstance(n, BOr):
            assert all(not isinstance(a, BOr) for a in n.args)
            for a in n.args:
                check(a)
        elif isinstance(n, BNot):
            assert not isinstance(n.arg, BNot)
            check(n.arg)

    check(node)

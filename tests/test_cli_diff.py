"""CLI coverage for ``transform-synth diff``.

Exit-code contract: 0 when the pair(s) are equivalent at the bound, 1
when discriminating tests exist, 2 on usage errors.  The ``--json``
schema is pinned (top-level key sets and the embedded schema version)
so downstream consumers can rely on it.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.models import CATALOG


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out


class TestExitCodes:
    def test_equivalent_pair_exits_zero(self, capsys) -> None:
        code, out = run_cli(
            capsys,
            ["diff", "--reference", "sc", "--subject", "sc", "--bound", "3"],
        )
        assert code == 0
        assert "verdict: equivalent" in out

    def test_discriminating_pair_exits_one(self, capsys) -> None:
        code, out = run_cli(
            capsys,
            ["diff", "--reference", "x86t_elt", "--subject", "x86t_amd_bug"],
        )
        assert code == 1
        assert "verdict: reference-stronger" in out
        assert "violates: invlpg" in out
        assert "WPTE" in out  # the fig 11-style remap ELT is printed

    def test_missing_subject_is_usage_error(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["diff", "--reference", "x86t_elt"])
        assert excinfo.value.code == 2

    def test_unknown_model_is_usage_error(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["diff", "--reference", "bogus", "--subject", "sc"])
        assert excinfo.value.code == 2

    def test_all_pairs_excludes_explicit_pair(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["diff", "--all-pairs", "--reference", "sc"])
        assert excinfo.value.code == 2

    def test_all_pairs_save_is_usage_error(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["diff", "--all-pairs", "--save", "out.elts"])
        assert excinfo.value.code == 2

    def test_resume_without_cache_dir_is_usage_error(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "diff",
                    "--reference",
                    "sc",
                    "--subject",
                    "sc",
                    "--resume",
                ]
            )
        assert excinfo.value.code == 2

    def test_nonpositive_jobs_is_usage_error(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "diff",
                    "--reference",
                    "sc",
                    "--subject",
                    "sc",
                    "--jobs",
                    "0",
                ]
            )
        assert excinfo.value.code == 2

    def test_bad_witness_backend_is_usage_error(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "diff",
                    "--reference",
                    "sc",
                    "--subject",
                    "sc",
                    "--witness-backend",
                    "quantum",
                ]
            )
        assert excinfo.value.code == 2


class TestJsonSchema:
    def test_cell_schema_is_stable(self, capsys) -> None:
        code, out = run_cli(
            capsys,
            [
                "diff",
                "--reference",
                "x86t_elt",
                "--subject",
                "x86t_amd_bug",
                "--json",
            ],
        )
        assert code == 1
        payload = json.loads(out)
        assert set(payload) == {
            "schema",
            "kind",
            "reference",
            "subject",
            "bound",
            "verdict",
            "counts",
            "discriminating",
            "stats",
        }
        assert payload["schema"] == 1
        assert payload["kind"] == "conformance-cell"
        assert payload["reference"] == "x86t_elt"
        assert payload["subject"] == "x86t_amd_bug"
        assert payload["verdict"] == "reference-stronger"
        assert set(payload["counts"]) == {
            "both-permit",
            "both-forbid",
            "only-reference-forbids",
            "only-subject-forbids",
        }
        (disc,) = payload["discriminating"]
        assert disc["violates"] == ["invlpg"]
        assert disc["elt"].startswith("elt")

    def test_matrix_schema_is_stable(self, capsys) -> None:
        code, out = run_cli(
            capsys, ["diff", "--all-pairs", "--bound", "4", "--json"]
        )
        assert code == 1
        payload = json.loads(out)
        assert payload["schema"] == 1
        assert payload["kind"] == "conformance-matrix"
        assert payload["models"] == list(CATALOG)
        assert payload["discriminating_total"] > 0
        assert len(payload["pairs"]) == len(CATALOG) * (len(CATALOG) - 1)


class TestAllPairsRendering:
    def test_matrix_table(self, capsys) -> None:
        code, out = run_cli(capsys, ["diff", "--all-pairs", "--bound", "4"])
        assert code == 1
        assert "conformance matrix @ bound 4" in out
        assert "ref \\ sub" in out
        assert "legend:" in out
        # Every catalog model appears as a grid row.
        for name in CATALOG:
            assert name in out
        # The catalog's syntactic inclusions are annotated in the detail.
        assert "(axiom subset)" in out
        assert "discriminating ELTs across all pairs:" in out
        # No consistency warnings on a correct engine.
        assert "WARNING" not in out


class TestPairOutput:
    def test_save_writes_loadable_diff_suite(self, tmp_path, capsys) -> None:
        from repro.litmus import EltSuite

        path = tmp_path / "amd.elts"
        code, out = run_cli(
            capsys,
            [
                "diff",
                "--reference",
                "x86t_elt",
                "--subject",
                "x86t_amd_bug",
                "--save",
                str(path),
            ],
        )
        assert code == 1
        assert f"diff suite written to {path}" in out
        suite = EltSuite.load(path)
        assert suite.names() == ["diff_001"]
        assert suite.get("diff_001").meta["subject"] == "x86t_amd_bug"

    def test_jobs_and_backend_invariant_bytes(self, tmp_path, capsys) -> None:
        base = ["diff", "--reference", "x86t_elt", "--subject", "x86t_amd_bug"]
        serial = tmp_path / "serial.elts"
        sharded = tmp_path / "sharded.elts"
        via_sat = tmp_path / "sat.elts"
        assert main(base + ["--save", str(serial)]) == 1
        assert main(base + ["--jobs", "2", "--save", str(sharded)]) == 1
        assert (
            main(base + ["--witness-backend", "sat", "--save", str(via_sat)])
            == 1
        )
        capsys.readouterr()
        assert sharded.read_bytes() == serial.read_bytes()
        assert via_sat.read_bytes() == serial.read_bytes()

    def test_cache_dir_reuse(self, tmp_path, capsys) -> None:
        cache = tmp_path / "cache"
        base = [
            "diff",
            "--reference",
            "x86t_elt",
            "--subject",
            "x86t_amd_bug",
            "--cache-dir",
            str(cache),
        ]
        assert main(base) == 1
        first = capsys.readouterr().out
        assert "cell_hit=False" in first
        assert main(base + ["--resume"]) == 1
        second = capsys.readouterr().out
        assert "cell_hit=True" in second

"""Cross-validation of the SAT (Alloy-port) witness enumerator against the
explicit Python enumerator — the reproduction's deepest end-to-end check:
two independent implementations of the candidate-execution space must
produce identical sets."""

from __future__ import annotations

import pytest

from repro.litmus.figures import (
    fig5b_invlpg_forces_rewalk,
    fig10a_ptwalk2,
    fig11_stale_mapping_after_ipi,
)
from repro.models import x86t_elt, x86tso
from repro.mtm import Execution, ProgramBuilder
from repro.relational import eval_formula
from repro.synth import enumerate_witnesses
from repro.synth.sat_backend import WitnessProblem, enumerate_witnesses_sat


def project(execution: Execution):
    return (frozenset(execution._rf), frozenset(execution.co))


def assert_same_witness_space(program) -> None:
    explicit = {project(e) for e in enumerate_witnesses(program)}
    via_sat = {project(e) for e in enumerate_witnesses_sat(program)}
    assert explicit == via_sat


class TestAgreementWithExplicitEnumerator:
    @pytest.mark.parametrize(
        "make",
        [fig10a_ptwalk2, fig5b_invlpg_forces_rewalk, fig11_stale_mapping_after_ipi],
        ids=["ptwalk2", "fig5b", "fig11"],
    )
    def test_paper_figures(self, make) -> None:
        assert_same_witness_space(make().execution.program)

    def test_two_writes_one_read(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        c0.write("x")
        r1 = c0.read("x", walk=None)
        assert r1 is not None
        assert_same_witness_space(b.build())

    def test_remap_with_reader(self) -> None:
        b = ProgramBuilder()
        b.map("x", "pa_a").map("y", "pa_b")
        c0 = b.thread()
        c0.read("y")
        c0.pte_write("y", "pa_a")
        c0.read("y")
        assert_same_witness_space(b.build())

    def test_mcm_program(self) -> None:
        b = ProgramBuilder(mcm_mode=True)
        c0, c1 = b.thread(), b.thread()
        c0.write("x")
        c1.read("x")
        c1.read("x")
        assert_same_witness_space(b.build())


class TestModelConstraints:
    def test_forbidden_only_enumeration(self) -> None:
        program = fig10a_ptwalk2().execution.program
        model = x86t_elt()
        forbidden = list(
            enumerate_witnesses_sat(program, model=model, violated_axiom="invlpg")
        )
        assert len(forbidden) == 1
        assert "invlpg" in model.check(forbidden[0]).violated

    def test_permitted_only_enumeration(self) -> None:
        program = fig10a_ptwalk2().execution.program
        model = x86t_elt()
        permitted = list(enumerate_witnesses_sat(program, model=model))
        assert len(permitted) == 1
        assert model.permits(permitted[0])

    def test_partition(self) -> None:
        # permitted + forbidden = all witnesses.
        program = fig11_stale_mapping_after_ipi().execution.program
        model = x86t_elt()
        all_w = {project(e) for e in enumerate_witnesses_sat(program)}
        permitted = {
            project(e) for e in enumerate_witnesses_sat(program, model=model)
        }
        encoded = WitnessProblem(program)
        encoded.constrain_model(model, violated=True)
        forbidden = {project(e) for e in encoded.executions()}
        assert permitted | forbidden == all_w
        assert not permitted & forbidden


class TestInstanceLevelAgreement:
    def test_decoded_instances_satisfy_formula_by_evaluator(self) -> None:
        # Every instance the SAT backend accepts as TSO-consistent must also
        # satisfy the TSO formula under the reference evaluator when
        # re-exported from the decoded Execution.
        program = fig10a_ptwalk2().execution.program
        model = x86tso()
        for execution in enumerate_witnesses_sat(program, model=model):
            instance = execution.to_instance()
            assert eval_formula(model.formula(), instance)
            assert model.permits(execution)


class TestPrebuiltProblemReuse:
    def test_prebuilt_problem_enumerates_identically(self) -> None:
        """The ``problem=`` hook: building the translation up front (for
        bounds inspection / stats access) and handing it to the
        enumerator must match the build-internally path exactly."""
        program = fig11_stale_mapping_after_ipi().execution.program
        internal = {project(e) for e in enumerate_witnesses_sat(program)}
        prebuilt = WitnessProblem(program)
        external = {
            project(e)
            for e in enumerate_witnesses_sat(program, problem=prebuilt)
        }
        assert external == internal
        assert prebuilt.solver_stats is not None  # caller sees the stats

    def test_prebuilt_problem_accepts_model_constraint(self) -> None:
        program = fig11_stale_mapping_after_ipi().execution.program
        model = x86t_elt()
        direct = {
            project(e)
            for e in enumerate_witnesses_sat(
                program, model=model, violated_axiom="invlpg"
            )
        }
        prebuilt = WitnessProblem(program)
        reused = {
            project(e)
            for e in enumerate_witnesses_sat(
                program,
                model=model,
                violated_axiom="invlpg",
                problem=prebuilt,
            )
        }
        assert reused == direct

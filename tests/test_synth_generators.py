"""Unit tests for the synthesis generators: skeleton enumeration, remap
fan-out insertion, TLB choice vectors, and witness counts on known
programs."""

from __future__ import annotations

import pytest

from repro.models import x86t_elt
from repro.mtm import EventKind
from repro.synth import (
    SynthesisConfig,
    enumerate_programs,
    enumerate_skeletons,
    enumerate_witnesses,
    program_cost,
)
from repro.synth.skeletons import Spec


def config(**overrides) -> SynthesisConfig:
    defaults = dict(bound=5, model=x86t_elt())
    defaults.update(overrides)
    return SynthesisConfig(**defaults)


class TestSkeletons:
    def test_every_skeleton_fits_bound_optimistically(self) -> None:
        cfg = config(bound=5)
        for skeleton in enumerate_skeletons(cfg, 1):
            base = sum(
                {"R": 1, "W": 2, "RMW": 3, "WPTE": 2, "INV": 1, "F": 1}[s.op]
                for thread in skeleton
                for s in thread
            )
            assert base <= 5

    def test_all_base_threads_nonempty(self) -> None:
        cfg = config(bound=6, max_threads=2)
        for skeleton in enumerate_skeletons(cfg, 2):
            assert all(thread for thread in skeleton)

    def test_every_skeleton_has_a_write(self) -> None:
        cfg = config(bound=5)
        for skeleton in enumerate_skeletons(cfg, 1):
            assert any(
                s.op in ("W", "RMW", "WPTE")
                for thread in skeleton
                for s in thread
            )

    def test_spurious_invlpg_needs_surrounding_accesses(self) -> None:
        cfg = config(bound=6)
        for skeleton in enumerate_skeletons(cfg, 1):
            for thread in skeleton:
                for index, spec in enumerate(thread):
                    if spec.op == "INV":
                        assert any(
                            s.is_user_access() and s.va == spec.va
                            for s in thread[:index]
                        )
                        assert any(
                            s.is_user_access() and s.va == spec.va
                            for s in thread[index + 1 :]
                        )

    def test_va_canonical_first_use(self) -> None:
        cfg = config(bound=6, max_vas=2)
        for skeleton in enumerate_skeletons(cfg, 1):
            seen = -1
            for thread in skeleton:
                for spec in thread:
                    if spec.op == "F":
                        continue
                    assert spec.va <= seen + 1
                    seen = max(seen, spec.va)


class TestProgramEnumeration:
    def test_all_programs_within_bound(self) -> None:
        cfg = config(bound=6)
        for program in enumerate_programs(cfg):
            assert program_cost(program, cfg) <= 6

    def test_dirty_bit_ablation_cost(self) -> None:
        cfg = config(bound=6, dirty_bit_as_rmw=True)
        for program in enumerate_programs(cfg):
            writes = len(program.events_of_kind(EventKind.WRITE))
            assert len(program.events) + writes <= 6

    def test_remote_invlpg_never_splits_rmw(self) -> None:
        cfg = config(bound=8, max_threads=2)
        for program in enumerate_programs(cfg):
            if not program.rmw:
                continue
            for read_eid, write_eid in program.rmw:
                thread = program.threads[program.events[read_eid].core]
                read_index = thread.index(read_eid)
                assert thread[read_index + 1] == write_eid

    def test_remap_fanout_complete(self) -> None:
        cfg = config(bound=7, max_threads=2)
        seen_remap = False
        for program in enumerate_programs(cfg):
            for pte_eid, _ in program.remap:
                seen_remap = True
                invlpgs = [i for p, i in program.remap if p == pte_eid]
                cores = sorted(program.events[i].core for i in invlpgs)
                assert cores == list(range(program.num_cores))
        assert seen_remap

    def test_mcm_mode_has_no_ghosts(self) -> None:
        cfg = config(bound=4, mcm_mode=True)
        for program in enumerate_programs(cfg):
            assert not program.ghosts


class TestWitnessCounts:
    @pytest.mark.parametrize(
        "figure, expected",
        [("fig10a", 2), ("fig5b", 1), ("fig5a", 1), ("fig11", 2)],
    )
    def test_known_witness_counts(self, figure: str, expected: int) -> None:
        from repro.litmus import ALL_FIGURES

        program = ALL_FIGURES[figure]().execution.program
        assert sum(1 for _ in enumerate_witnesses(program)) == expected

    def test_sb_elt_witness_count(self) -> None:
        # sb as an ELT: 2 choices per data read (initial value or the
        # remote write) x 2 choices per *cross-core* walk (initial PTE
        # value or the remote write's dirty bit, which forwards the same
        # mapping); same-core walks cannot read their own parent's dirty
        # bit (circular value flow).  2 * 2 * 2 * 2 = 16.
        from repro.litmus.figures import fig2b_sb_elt

        program = fig2b_sb_elt().execution.program
        assert sum(1 for _ in enumerate_witnesses(program)) == 16

    def test_witnesses_are_distinct(self) -> None:
        from repro.litmus.figures import fig6d_remap_disambiguation
        from repro.synth import canonical_execution_key

        program = fig6d_remap_disambiguation().execution.program
        keys = [
            canonical_execution_key(w) for w in enumerate_witnesses(program)
        ]
        assert len(keys) == len(set(keys))


class TestSpecHelpers:
    def test_spec_is_user_access(self) -> None:
        assert Spec("R", 0).is_user_access()
        assert Spec("RMW", 1).is_user_access()
        assert not Spec("INV", 0).is_user_access()
        assert not Spec("F").is_user_access()

"""Differential fuzzing of the shared-translation diff path.

The diff pipeline classifies each candidate execution once through
:class:`~repro.models.PairClassifier` (shared axiom evaluation, shared
witness enumeration, canonical-key bookkeeping).  The oracle here is the
naive loop: enumerate the same witnesses and call each model's
``permits`` independently per execution.  On randomly generated
well-formed programs, both must agree on every bucket count and on the
asymmetric canonical-key sets — any divergence means the sharing
machinery changed semantics.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.conformance import DiffConfig, run_diff_pipeline
from repro.models import catalog_models
from repro.synth import (
    SynthesisConfig,
    canonical_execution_key,
    enumerate_witnesses,
)

from .strategies import catalog_model_pairs, programs, vm_programs

SETTINGS = dict(max_examples=20, deadline=None)


def naive_buckets(reference, subject, witnesses):
    """The oracle: independent ``permits`` calls per execution."""
    counts = {
        "both_permit": 0,
        "both_forbid": 0,
        "only_reference_forbids": 0,
        "only_subject_forbids": 0,
    }
    reference_only = set()
    subject_only = set()
    for execution in witnesses:
        ref_permits = reference.permits(execution)
        sub_permits = subject.permits(execution)
        if ref_permits and sub_permits:
            counts["both_permit"] += 1
        elif not ref_permits and not sub_permits:
            counts["both_forbid"] += 1
        elif sub_permits:
            counts["only_reference_forbids"] += 1
            reference_only.add(canonical_execution_key(execution))
        else:
            counts["only_subject_forbids"] += 1
            subject_only.add(canonical_execution_key(execution))
    return counts, reference_only, subject_only


def assert_diff_matches_naive(reference, subject, program) -> None:
    witnesses = list(enumerate_witnesses(program))
    counts, reference_only, subject_only = naive_buckets(
        reference, subject, witnesses
    )
    diff = DiffConfig(
        base=SynthesisConfig(bound=max(1, program.size), model=reference),
        subject=subject,
    )
    outcome = run_diff_pipeline(diff, [((0,), program)])
    stats = outcome.stats
    assert stats.executions_enumerated == len(witnesses)
    assert stats.both_permit == counts["both_permit"]
    assert stats.both_forbid == counts["both_forbid"]
    assert stats.only_reference_forbids == counts["only_reference_forbids"]
    assert stats.only_subject_forbids == counts["only_subject_forbids"]
    assert outcome.reference_only_keys == reference_only
    assert outcome.subject_only_keys == subject_only
    # Every discriminating ELT is evidence from the asymmetric bucket.
    for elt in outcome.by_key.values():
        assert elt.execution_key in reference_only
        assert reference.forbids(elt.execution)
        assert subject.permits(elt.execution)


@settings(**SETTINGS)
@given(pair=catalog_model_pairs(), program=programs())
def test_diff_pipeline_matches_naive_loop(pair, program) -> None:
    reference, subject = pair
    assert_diff_matches_naive(reference, subject, program)


@settings(**SETTINGS)
@given(pair=catalog_model_pairs(), program=vm_programs())
def test_diff_pipeline_matches_naive_loop_on_vm_programs(
    pair, program
) -> None:
    reference, subject = pair
    assert_diff_matches_naive(reference, subject, program)


def test_diff_pipeline_matches_naive_on_full_bound_enumeration() -> None:
    """One deterministic end-to-end cross-check at a whole bound: every
    (reference, subject) catalog pair over the complete bound-4 candidate
    space."""
    from repro.synth import enumerate_programs

    models = catalog_models()
    base = SynthesisConfig(bound=4, model=models["x86t_elt"])
    all_programs = list(enumerate_programs(base))
    witnesses = [
        w for program in all_programs for w in enumerate_witnesses(program)
    ]
    for ref_name, reference in models.items():
        for sub_name, subject in models.items():
            if ref_name == sub_name:
                continue
            counts, reference_only, subject_only = naive_buckets(
                reference, subject, witnesses
            )
            diff = DiffConfig(
                base=SynthesisConfig(bound=4, model=reference),
                subject=subject,
            )
            outcome = run_diff_pipeline(
                diff,
                (((index,), p) for index, p in enumerate(all_programs)),
            )
            assert outcome.stats.both_permit == counts["both_permit"]
            assert outcome.stats.both_forbid == counts["both_forbid"]
            assert (
                outcome.stats.only_reference_forbids
                == counts["only_reference_forbids"]
            )
            assert (
                outcome.stats.only_subject_forbids
                == counts["only_subject_forbids"]
            )
            assert outcome.reference_only_keys == reference_only
            assert outcome.subject_only_keys == subject_only

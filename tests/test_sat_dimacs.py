"""Tests for DIMACS CNF I/O."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimacsError
from repro.sat import (
    Cnf,
    dimacs_text,
    parse_dimacs,
    read_dimacs,
    solve_cnf,
    write_dimacs,
)


class TestParsing:
    def test_basic(self) -> None:
        cnf = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n")
        assert cnf.num_vars == 3
        assert cnf.num_clauses == 2
        assert (1, -2) in cnf.clauses

    def test_comments_ignored(self) -> None:
        cnf = parse_dimacs("c a comment\np cnf 1 1\nc another\n1 0\n")
        assert cnf.num_clauses == 1

    def test_clause_spanning_lines(self) -> None:
        cnf = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert cnf.clauses[0] == (1, 2, 3)

    def test_missing_problem_line(self) -> None:
        with pytest.raises(DimacsError):
            parse_dimacs("1 2 0\n")

    def test_bad_problem_line(self) -> None:
        with pytest.raises(DimacsError):
            parse_dimacs("p sat 2 2\n1 0\n")

    def test_trailing_unterminated_clause(self) -> None:
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 2\n")

    def test_bad_token(self) -> None:
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 x 0\n")


class TestWriting:
    def test_stream_roundtrip(self) -> None:
        cnf = Cnf(3)
        cnf.add_clauses([[1, -2], [2, 3], [-1]])
        buffer = io.StringIO()
        write_dimacs(cnf, buffer)
        buffer.seek(0)
        parsed = read_dimacs(buffer)
        assert set(parsed.clauses) == set(cnf.clauses)
        assert parsed.num_vars == cnf.num_vars


@st.composite
def cnfs(draw) -> Cnf:
    num_vars = draw(st.integers(min_value=1, max_value=6))
    cnf = Cnf(num_vars)
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        clause = draw(
            st.lists(
                st.integers(min_value=1, max_value=num_vars).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=4,
            )
        )
        cnf.add_clause(clause)
    return cnf


@given(cnfs())
@settings(max_examples=80, deadline=None)
def test_text_roundtrip_preserves_satisfiability(cnf: Cnf) -> None:
    parsed = parse_dimacs(dimacs_text(cnf))
    assert set(parsed.clauses) == set(cnf.clauses)
    assert solve_cnf(parsed).satisfiable == solve_cnf(cnf).satisfiable

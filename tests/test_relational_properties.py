"""Property-based cross-validation of the relational stack.

Two oracles are compared exhaustively on a 2-atom universe:

* the SAT-backed model finder (``Problem.iter_instances``), and
* brute-force enumeration of every relation assignment checked with the
  reference evaluator (``eval_formula``).

Any disagreement in the *set* of satisfying instances indicates a bug in the
translator, the circuit builder, Tseitin conversion, or the CDCL solver.
Also checks algebraic laws of TupleSet against random relations.
"""

from __future__ import annotations

from itertools import chain, combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    Iden,
    Problem,
    Rel,
    TupleSet,
    Univ,
    acyclic,
    eval_formula,
    exists,
    forall,
    no,
    some,
    subset,
)
from repro.relational.ast import Formula
from repro.relational.instance import Instance

ATOMS = ("a0", "a1")
R_TUPLES = tuple((x, y) for x in ATOMS for y in ATOMS)
S_TUPLES = tuple((x,) for x in ATOMS)
R = Rel("r", 2)
S = Rel("s", 1)


def _powerset(items):
    return chain.from_iterable(combinations(items, n) for n in range(len(items) + 1))


def brute_force_instances(formula: Formula) -> set[frozenset]:
    found = set()
    for r_subset in _powerset(R_TUPLES):
        for s_subset in _powerset(S_TUPLES):
            instance = Instance(
                ATOMS,
                {"r": TupleSet(2, r_subset), "s": TupleSet(1, s_subset)},
            )
            if eval_formula(formula, instance):
                key = frozenset(
                    [("r", frozenset(r_subset)), ("s", frozenset(s_subset))]
                )
                found.add(key)
    return found


def solver_instances(formula: Formula) -> set[frozenset]:
    problem = Problem(ATOMS)
    problem.declare("r", 2)
    problem.declare("s", 1)
    problem.constrain(formula)
    found = set()
    for instance in problem.iter_instances():
        key = frozenset(
            [
                ("r", frozenset(instance.relation("r").tuples)),
                ("s", frozenset(instance.relation("s").tuples)),
            ]
        )
        found.add(key)
    return found


# ----------------------------------------------------------------------
# Random formula generator
# ----------------------------------------------------------------------
def exprs():
    base = st.sampled_from(
        [R, R.t(), R.plus(), Iden(), R + R.t(), R - Iden(), R & R.t(), R.dot(R)]
    )
    return base


def unary_exprs():
    return st.sampled_from([S, Univ(), S.dot(R), Univ().dot(R), S - S.dot(R)])


def atomic_formulas():
    return st.one_of(
        st.tuples(exprs(), exprs()).map(lambda ab: subset(ab[0], ab[1])),
        exprs().map(acyclic),
        exprs().map(no),
        exprs().map(some),
        unary_exprs().map(some),
        unary_exprs().map(lambda e: e.lone()),
        unary_exprs().map(lambda e: e.one()),
        st.just(forall("x", Univ(), lambda x: some(x.dot(R)))),
        st.just(exists("x", S, lambda x: no(x.dot(R)))),
        st.just(forall("x", S, lambda x: subset(x.dot(R), S))),
    )


def formulas():
    return st.recursive(
        atomic_formulas(),
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda ab: ab[0].and_(ab[1])),
            st.tuples(children, children).map(lambda ab: ab[0].or_(ab[1])),
            children.map(lambda f: f.not_()),
            st.tuples(children, children).map(lambda ab: ab[0].implies(ab[1])),
        ),
        max_leaves=4,
    )


@given(formulas())
@settings(max_examples=60, deadline=None)
def test_solver_agrees_with_brute_force(formula: Formula) -> None:
    assert solver_instances(formula) == brute_force_instances(formula)


# ----------------------------------------------------------------------
# Algebraic laws of TupleSet
# ----------------------------------------------------------------------
ATOMS4 = ["w", "x", "y", "z"]


def random_relation():
    pairs = st.lists(
        st.tuples(st.sampled_from(ATOMS4), st.sampled_from(ATOMS4)),
        max_size=8,
    )
    return pairs.map(TupleSet.pairs)


@given(random_relation(), random_relation(), random_relation())
@settings(max_examples=100, deadline=None)
def test_join_distributes_over_union(a, b, c) -> None:
    assert a.dot(b + c) == a.dot(b) + a.dot(c)


@given(random_relation(), random_relation())
@settings(max_examples=100, deadline=None)
def test_transpose_antidistributes_over_join(a, b) -> None:
    assert a.dot(b).t() == b.t().dot(a.t())


@given(random_relation())
@settings(max_examples=100, deadline=None)
def test_closure_is_fixpoint(a) -> None:
    closed = a.plus()
    assert closed.dot(closed).is_subset(closed)
    assert a.is_subset(closed)
    # Minimality: closure equals iterated composition.
    expanded = a
    power = a
    for _ in range(len(ATOMS4)):
        power = power.dot(a)
        expanded = expanded + power
    assert expanded == closed


@given(random_relation())
@settings(max_examples=100, deadline=None)
def test_acyclic_iff_closure_irreflexive(a) -> None:
    assert a.is_acyclic() == a.plus().is_irreflexive()


@given(random_relation(), random_relation())
@settings(max_examples=100, deadline=None)
def test_union_commutative_and_idempotent(a, b) -> None:
    assert a + b == b + a
    assert a + a == a

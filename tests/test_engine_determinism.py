"""Engine determinism and stability guarantees.

Bounded-exhaustive synthesis must be a *function* of its configuration:
same config, same suite (the paper's completeness-up-to-bound framing
depends on it).  Canonical keys must likewise be stable across process
randomization (dict ordering, hash seeds) — these tests lock that in.
"""

from __future__ import annotations

from repro.litmus import serialize_elt
from repro.models import x86t_elt
from repro.synth import (
    SynthesisConfig,
    canonical_program_key,
    enumerate_programs,
    synthesize,
)


def run(axiom: str, bound: int):
    return synthesize(
        SynthesisConfig(bound=bound, model=x86t_elt(), target_axiom=axiom)
    )


class TestDeterminism:
    def test_same_config_same_suite(self) -> None:
        first = run("invlpg", 5)
        second = run("invlpg", 5)
        assert first.keys() == second.keys()
        assert [e.key for e in first.elts] == [e.key for e in second.elts]

    def test_stats_are_reproducible(self) -> None:
        first = run("tlb_causality", 4)
        second = run("tlb_causality", 4)
        assert (
            first.stats.programs_enumerated == second.stats.programs_enumerated
        )
        assert (
            first.stats.executions_enumerated
            == second.stats.executions_enumerated
        )
        assert first.stats.interesting == second.stats.interesting
        assert first.stats.minimal == second.stats.minimal

    def test_program_enumeration_order_is_stable(self) -> None:
        config = SynthesisConfig(bound=5, model=x86t_elt())
        first = [canonical_program_key(p) for p in enumerate_programs(config)]
        second = [canonical_program_key(p) for p in enumerate_programs(config)]
        assert first == second

    def test_serializations_are_stable(self) -> None:
        result = run("sc_per_loc", 4)
        texts_a = [serialize_elt(e.execution) for e in result.elts]
        texts_b = [
            serialize_elt(e.execution) for e in run("sc_per_loc", 4).elts
        ]
        assert texts_a == texts_b


class TestRepresentativeExecutions:
    def test_representative_violates_its_axioms(self) -> None:
        model = x86t_elt()
        result = run("invlpg", 5)
        for elt in result.elts:
            verdict = model.check(elt.execution)
            assert verdict.violated == elt.violated_axioms

    def test_outcome_counts_positive(self) -> None:
        for elt in run("sc_per_loc", 5).elts:
            assert elt.outcome_count >= 1

    def test_representative_program_matches_key(self) -> None:
        for elt in run("invlpg", 5).elts:
            assert canonical_program_key(elt.program) == elt.key


class TestSatWitnessBackend:
    """The SAT witness backend must be a drop-in for the explicit one:
    identical canonical suites (the representative execution per class may
    differ, since the backends enumerate witnesses in different orders),
    deterministic across runs, solver counters threaded into the stats."""

    def test_backends_produce_canonically_identical_suites(self) -> None:
        for bound in (4, 5):
            explicit = run("sc_per_loc", bound)
            via_sat = synthesize(
                SynthesisConfig(
                    bound=bound,
                    model=x86t_elt(),
                    target_axiom="sc_per_loc",
                    witness_backend="sat",
                )
            )
            assert explicit.keys() == via_sat.keys()
            assert [e.key for e in explicit.elts] == [
                e.key for e in via_sat.elts
            ]
            assert [e.outcome_count for e in explicit.elts] == [
                e.outcome_count for e in via_sat.elts
            ]

    def test_sat_backend_is_deterministic_and_counts_work(self) -> None:
        config = SynthesisConfig(
            bound=4,
            model=x86t_elt(),
            target_axiom="tlb_causality",
            witness_backend="sat",
            incremental=False,
        )
        first = synthesize(config)
        second = synthesize(config)
        assert first.keys() == second.keys()
        assert first.stats.sat_propagations > 0
        assert first.stats.sat_propagations == second.stats.sat_propagations
        assert first.stats.sat_decisions == second.stats.sat_decisions

    def test_incremental_rerun_replays_sessions(self) -> None:
        """The second incremental run of the same config answers every
        program from the session cache: same suite, no new translations."""
        from repro.synth import shared_session_cache

        shared_session_cache().clear()
        config = SynthesisConfig(
            bound=4,
            model=x86t_elt(),
            target_axiom="tlb_causality",
            witness_backend="sat",
            incremental=True,
        )
        first = synthesize(config)
        second = synthesize(config)
        assert first.keys() == second.keys()
        assert first.stats.sat_propagations > 0
        assert first.stats.sat_translations == first.stats.programs_enumerated
        assert first.stats.sat_sessions == first.stats.programs_enumerated
        assert second.stats.sat_translations == 0
        assert (
            second.stats.sat_translations_avoided
            == second.stats.programs_enumerated
        )

    def test_explicit_backend_reports_no_sat_work(self) -> None:
        result = run("sc_per_loc", 4)
        assert result.stats.sat_propagations == 0
        assert result.stats.sat_decisions == 0

    def test_unknown_backend_rejected(self) -> None:
        import pytest

        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError):
            SynthesisConfig(bound=4, model=x86t_elt(), witness_backend="z3")

"""Unit tests for concrete relations (TupleSet)."""

from __future__ import annotations

import pytest

from repro.errors import ArityError
from repro.relational import TupleSet


class TestConstruction:
    def test_arity_validation(self) -> None:
        with pytest.raises(ArityError):
            TupleSet(2, [("a",)])

    def test_zero_arity_rejected(self) -> None:
        with pytest.raises(ArityError):
            TupleSet(0)

    def test_unary_helper(self) -> None:
        ts = TupleSet.unary(["a", "b"])
        assert ("a",) in ts and ("b",) in ts
        assert ts.arity == 1

    def test_identity(self) -> None:
        ts = TupleSet.identity(["a", "b"])
        assert ts.tuples == {("a", "a"), ("b", "b")}

    def test_total_order(self) -> None:
        ts = TupleSet.total_order(["a", "b", "c"])
        assert ts.tuples == {("a", "b"), ("a", "c"), ("b", "c")}
        assert ts.is_total_order_on(["a", "b", "c"])

    def test_atoms(self) -> None:
        ts = TupleSet.pairs([("a", "b"), ("c", "b")])
        assert ts.atoms() == {"a", "b", "c"}


class TestAlgebra:
    def test_union_intersection_difference(self) -> None:
        a = TupleSet.pairs([("x", "y"), ("y", "z")])
        b = TupleSet.pairs([("y", "z"), ("z", "x")])
        assert (a + b).tuples == {("x", "y"), ("y", "z"), ("z", "x")}
        assert (a & b).tuples == {("y", "z")}
        assert (a - b).tuples == {("x", "y")}

    def test_arity_mismatch_raises(self) -> None:
        with pytest.raises(ArityError):
            TupleSet.unary(["a"]) + TupleSet.pairs([("a", "b")])

    def test_join_binary_binary(self) -> None:
        a = TupleSet.pairs([("1", "2"), ("2", "3")])
        b = TupleSet.pairs([("2", "9"), ("3", "9")])
        assert a.dot(b).tuples == {("1", "9"), ("2", "9")}

    def test_join_unary_binary_is_image(self) -> None:
        points = TupleSet.unary(["1"])
        edges = TupleSet.pairs([("1", "2"), ("1", "3"), ("2", "4")])
        assert points.dot(edges).tuples == {("2",), ("3",)}

    def test_join_unary_unary_rejected(self) -> None:
        with pytest.raises(ArityError):
            TupleSet.unary(["a"]).dot(TupleSet.unary(["a"]))

    def test_product(self) -> None:
        a = TupleSet.unary(["x"])
        b = TupleSet.unary(["y", "z"])
        assert a.product(b).tuples == {("x", "y"), ("x", "z")}

    def test_transpose(self) -> None:
        a = TupleSet.pairs([("p", "q")])
        assert a.t().tuples == {("q", "p")}

    def test_transpose_requires_binary(self) -> None:
        with pytest.raises(ArityError):
            TupleSet.unary(["a"]).t()

    def test_closure_chain(self) -> None:
        chain = TupleSet.pairs([("a", "b"), ("b", "c"), ("c", "d")])
        closed = chain.plus()
        assert ("a", "d") in closed
        assert ("a", "c") in closed
        assert ("d", "a") not in closed
        assert len(closed) == 6

    def test_closure_cycle_includes_self_pairs(self) -> None:
        cycle = TupleSet.pairs([("a", "b"), ("b", "a")])
        closed = cycle.plus()
        assert ("a", "a") in closed and ("b", "b") in closed

    def test_star_adds_identity(self) -> None:
        chain = TupleSet.pairs([("a", "b")])
        starred = chain.star(["a", "b", "c"])
        assert ("c", "c") in starred
        assert ("a", "b") in starred


class TestPredicates:
    def test_acyclic_dag(self) -> None:
        dag = TupleSet.pairs([("a", "b"), ("a", "c"), ("b", "c")])
        assert dag.is_acyclic()

    def test_cycle_detected(self) -> None:
        cyc = TupleSet.pairs([("a", "b"), ("b", "c"), ("c", "a")])
        assert not cyc.is_acyclic()

    def test_self_loop_is_cycle(self) -> None:
        assert not TupleSet.pairs([("a", "a")]).is_acyclic()

    def test_empty_is_acyclic(self) -> None:
        assert TupleSet.empty(2).is_acyclic()

    def test_irreflexive(self) -> None:
        assert TupleSet.pairs([("a", "b")]).is_irreflexive()
        assert not TupleSet.pairs([("a", "a")]).is_irreflexive()

    def test_subset(self) -> None:
        small = TupleSet.pairs([("a", "b")])
        big = TupleSet.pairs([("a", "b"), ("b", "c")])
        assert small.is_subset(big)
        assert not big.is_subset(small)

    def test_total_order_detection(self) -> None:
        assert TupleSet.total_order(["a", "b", "c"]).is_total_order_on(["a", "b", "c"])
        partial = TupleSet.pairs([("a", "b")])
        assert not partial.is_total_order_on(["a", "b", "c"])

    def test_equality_and_hash(self) -> None:
        a = TupleSet.pairs([("a", "b")])
        b = TupleSet.pairs([("a", "b")])
        assert a == b
        assert hash(a) == hash(b)
        assert a != TupleSet.pairs([("b", "a")])

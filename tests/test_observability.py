"""Tests for :mod:`repro.obs` — the tracer, the unified metrics
registry, trace exporters, run manifests, and their CLI surface.

The load-bearing properties:

* exported Chrome traces are structurally valid (matched, properly
  nested B/E pairs per lane, non-decreasing timestamps, pid/tid on every
  duration event) — :func:`repro.obs.validate_chrome_trace` re-checks
  exactly what Perfetto assumes;
* the observable run *is* the untraced run: suite bytes are identical
  with ``--trace`` on and off, and the deterministic counter/histogram
  snapshot is invariant across ``--jobs`` and shard plans;
* worker lanes merge deterministically: ``--jobs 1`` and ``--jobs 4``
  over the same shard plan produce identically-labeled lanes with the
  same span populations.
"""

from __future__ import annotations

import json
from collections import Counter
from io import StringIO

import pytest

from repro.cli import main
from repro.models import x86t_elt
from repro.obs import (
    MANIFEST_KIND,
    NULL_REGISTRY,
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    Observation,
    ProgressReporter,
    Tracer,
    build_manifest,
    chrome_trace,
    current_registry,
    current_tracer,
    jsonl_records,
    list_manifests,
    load_manifest,
    progress_enabled,
    registry_from_suite_stats,
    store_manifest,
    validate_chrome_trace,
    write_trace,
)
from repro.orchestrate import run_sharded
from repro.synth import SynthesisConfig, synthesize


def config_for(axiom: str = "sc_per_loc", bound: int = 4) -> SynthesisConfig:
    return SynthesisConfig(bound=bound, model=x86t_elt(), target_axiom=axiom)


class TestTracer:
    def test_nesting_and_deterministic_ids(self) -> None:
        tracer = Tracer("t")
        with tracer.span("outer", category="test"):
            with tracer.span("inner", category="test", detail=1):
                pass
        assert [s.name for s in tracer.spans] == ["outer", "inner"]
        outer, inner = tracer.spans
        assert outer.span_id == 1 and inner.span_id == 2
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.args == {"detail": 1}
        assert 0 <= outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_begin_end_api(self) -> None:
        tracer = Tracer("t")
        span = tracer.begin("loop-body", category="test")
        tracer.end(span)
        tracer.end(None)  # no-op, mirrors the disabled path
        assert [s.name for s in tracer.spans] == ["loop-body"]
        assert tracer.spans[0].end_s >= tracer.spans[0].start_s

    def test_null_tracer_is_falsy_and_inert(self) -> None:
        assert not NULL_TRACER
        with NULL_TRACER.span("anything", category="x") as span:
            assert span is None
        assert NULL_TRACER.begin("anything") is None
        NULL_TRACER.end(None)

    def test_adopted_batches_keep_arrival_order(self) -> None:
        coordinator = Tracer("main")
        for label in ("s0/2", "s1/2"):
            worker = Tracer(label)
            with worker.span("shard", category="orchestrate"):
                pass
            coordinator.adopt(worker.batch())
        coordinator.adopt(None)  # cached shard: nothing to adopt
        assert [b.label for b in coordinator.batches] == ["s0/2", "s1/2"]


class TestMetricsRegistry:
    def test_histogram_buckets_are_integer_exact(self) -> None:
        histogram = Histogram()
        for value in (0, 1, 2, 3, 4, 1024):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 6
        assert snap["total"] == 1034
        assert snap["min"] == 0 and snap["max"] == 1024

    def test_absorb_is_commutative(self) -> None:
        def build(values):
            registry = MetricsRegistry()
            for value in values:
                registry.inc("c", value)
                registry.observe("h", value)
                registry.set_gauge("g", value)
            return registry

        left = MetricsRegistry()
        left.absorb(build([1, 2]))
        left.absorb(build([3]))
        right = MetricsRegistry()
        right.absorb(build([3]))
        right.absorb(build([1, 2]))
        assert left.snapshot() == right.snapshot()

    def test_informational_metrics_stay_out_of_deterministic_snapshot(
        self,
    ) -> None:
        registry = MetricsRegistry()
        registry.inc("suite.interesting", 2)
        registry.inc("cache.session_hits", 5, informational=True)
        deterministic = registry.deterministic_snapshot()
        assert deterministic["counters"] == {"suite.interesting": 2}
        assert "cache.session_hits" not in deterministic["counters"]
        assert registry.snapshot()["informational"]["counters"] == {
            "cache.session_hits": 5
        }

    def test_null_registry_is_falsy_and_inert(self) -> None:
        assert not NULL_REGISTRY
        NULL_REGISTRY.inc("x")
        NULL_REGISTRY.observe("h", 3)
        NULL_REGISTRY.absorb(MetricsRegistry())


class TestChromeExport:
    def _tracer(self) -> Tracer:
        tracer = Tracer("main")
        with tracer.span("outer", category="test"):
            with tracer.span("inner", category="test"):
                pass
        return tracer

    def test_valid_trace_structure(self) -> None:
        payload = chrome_trace(self._tracer(), stage_times={"enumerate": 0.25})
        stats = validate_chrome_trace(payload)
        assert stats["spans"] == 3  # outer + inner + 1 stage span
        names = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert names == {"main", "stage totals (aggregated)"}

    def test_stage_lane_reproduces_profile_totals(self) -> None:
        stage_times = {"enumerate": 0.25, "classify": 0.5}
        payload = chrome_trace(self._tracer(), stage_times=stage_times)
        totals = {
            event["name"]: event["args"]["total_s"]
            for event in payload["traceEvents"]
            if event["ph"] == "B" and event.get("args", {}).get("synthetic")
        }
        assert totals == {"stage:enumerate": 0.25, "stage:classify": 0.5}

    def test_validator_rejects_unclosed_span(self) -> None:
        event = {"name": "x", "ph": "B", "pid": 1, "tid": 0, "ts": 0.0}
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_validator_rejects_mismatched_close(self) -> None:
        events = [
            {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 0.0},
            {"name": "b", "ph": "E", "pid": 1, "tid": 0, "ts": 1.0},
        ]
        with pytest.raises(ValueError, match="closes"):
            validate_chrome_trace({"traceEvents": events})

    def test_validator_rejects_decreasing_timestamps(self) -> None:
        events = [
            {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 5.0},
            {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 1.0},
        ]
        with pytest.raises(ValueError, match="decreases"):
            validate_chrome_trace({"traceEvents": events})

    def test_validator_rejects_missing_tid(self) -> None:
        events = [{"name": "a", "ph": "B", "pid": 1, "ts": 0.0}]
        with pytest.raises(ValueError, match="tid"):
            validate_chrome_trace({"traceEvents": events})

    def test_jsonl_export_record_types(self, tmp_path) -> None:
        records = jsonl_records(
            self._tracer(),
            stage_times={"enumerate": 0.25},
            metrics={"counters": {}},
            manifest={"kind": MANIFEST_KIND},
        )
        types = [record["type"] for record in records]
        assert types[0] == "meta"
        assert types.count("span") == 2
        assert {"stage-totals", "metrics", "manifest"} <= set(types)
        path = tmp_path / "trace.jsonl"
        write_trace(str(path), self._tracer())
        lines = path.read_text().splitlines()
        assert all(json.loads(line)["type"] for line in lines)


class TestManifests:
    def test_round_trip_with_artifact_digest(self, tmp_path) -> None:
        artifact = tmp_path / "suite.elts"
        artifact.write_text("elt\n")
        manifest = build_manifest(
            command="synthesize",
            identity={"bound": 4},
            identity_key="abc123",
            counters={"counters": {"suite.interesting": 1}, "histograms": {}},
            wall_s=1.5,
            cpu_s=1.0,
            stage_times={"enumerate": 0.5},
            artifacts={"suite": artifact},
        )
        assert manifest["kind"] == MANIFEST_KIND
        assert manifest["artifacts"]["suite"]["sha256"]
        path = store_manifest(tmp_path, "abc123", manifest)
        assert load_manifest(path) == manifest
        assert list_manifests(tmp_path) == [manifest]

    def test_unreadable_artifact_digests_to_none(self, tmp_path) -> None:
        manifest = build_manifest(
            command="synthesize",
            identity={},
            identity_key="k",
            counters={},
            wall_s=0.0,
            cpu_s=0.0,
            artifacts={"missing": tmp_path / "nope"},
        )
        assert manifest["artifacts"]["missing"]["sha256"] is None

    def test_list_skips_foreign_json(self, tmp_path) -> None:
        directory = tmp_path / "manifests"
        directory.mkdir()
        (directory / "junk.json").write_text("{\"kind\": \"other\"}")
        assert list_manifests(tmp_path) == []


class TestObservation:
    def test_disabled_observation_installs_nothing(self) -> None:
        obs = Observation(trace_path=None)
        assert not obs.enabled
        with obs:
            assert not current_tracer()
            assert not current_registry()
        assert obs.finish(command="noop") is None

    def test_traced_synthesis_round_trip(self, tmp_path) -> None:
        trace_path = tmp_path / "run.json"
        obs = Observation(trace_path=str(trace_path))
        with obs:
            result = synthesize(config_for())
        manifest = obs.finish(
            command="synthesize",
            identity={"bound": 4},
            identity_key="deadbeef",
            stats=result.stats,
            cache_dir=str(tmp_path),
        )
        payload = json.loads(trace_path.read_text())
        stats = validate_chrome_trace(payload)
        assert stats["spans"] > 0
        counters = manifest["counters"]["counters"]
        assert counters["suite.unique_programs"] == result.count
        assert counters["suite.interesting"] >= result.count
        assert counters["suite.executions_enumerated"] > 0
        assert "pipeline.witnesses_per_program" in manifest["counters"][
            "histograms"
        ]
        assert list_manifests(tmp_path)[0] == manifest
        # The tracer/registry are restored after the with-block.
        assert not current_tracer()
        assert not current_registry()


class TestCrossProcessDeterminism:
    @staticmethod
    def _observed_run(jobs: int):
        obs = Observation(enabled=True)
        with obs:
            orchestrated = run_sharded(config_for(), jobs=jobs, shard_count=4)
        lanes = [
            (batch.label, Counter(span.name for span in batch.spans))
            for batch in obs.tracer.batches
        ]
        return orchestrated.result, lanes, obs.registry.deterministic_snapshot()

    def test_jobs1_and_jobs2_merge_identically(self) -> None:
        serial_result, serial_lanes, serial_counters = self._observed_run(1)
        parallel_result, parallel_lanes, parallel_counters = self._observed_run(2)
        assert [elt.key for elt in serial_result.elts] == [
            elt.key for elt in parallel_result.elts
        ]
        assert serial_lanes == parallel_lanes
        assert serial_counters == parallel_counters
        assert [label for label, _ in serial_lanes] == [
            "s0/4", "s1/4", "s2/4", "s3/4",
        ]


class TestCliTraceSurface:
    def test_suite_bytes_identical_with_and_without_trace(
        self, tmp_path, capsys
    ) -> None:
        traced = tmp_path / "traced.elts"
        plain = tmp_path / "plain.elts"
        trace = tmp_path / "trace.json"
        assert main(
            [
                "synthesize", "--bound", "4", "--axiom", "sc_per_loc",
                "--save", str(traced), "--trace", str(trace),
            ]
        ) == 0
        assert main(
            [
                "synthesize", "--bound", "4", "--axiom", "sc_per_loc",
                "--save", str(plain),
            ]
        ) == 0
        capsys.readouterr()
        assert traced.read_bytes() == plain.read_bytes()
        payload = json.loads(trace.read_text())
        validate_chrome_trace(payload)
        manifest = payload["otherData"]["manifest"]
        assert manifest["artifacts"]["suite"]["path"] == str(traced)

    def test_trace_jsonl_extension_switches_format(
        self, tmp_path, capsys
    ) -> None:
        trace = tmp_path / "trace.jsonl"
        assert main(
            [
                "synthesize", "--bound", "4", "--axiom", "invlpg",
                "--trace", str(trace),
            ]
        ) == 0
        capsys.readouterr()
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert records[0]["type"] == "meta"
        assert any(record["type"] == "manifest" for record in records)

    def test_diff_trace_covers_shards_and_profile_reconciles(
        self, tmp_path, capsys
    ) -> None:
        trace = tmp_path / "diff.json"
        code = main(
            [
                "diff", "--reference", "x86t_elt", "--subject", "x86t_amd_bug",
                "--bound", "4", "--shards", "2", "--trace", str(trace),
                "--profile", "--json",
            ]
        )
        assert code == 0  # bound 4 does not discriminate this pair
        captured = capsys.readouterr()
        profile = json.loads(
            captured.err[captured.err.index("{"):].rsplit("}", 1)[0] + "}"
        )
        assert profile["kind"] == "stage-profile"
        payload = json.loads(trace.read_text())
        validate_chrome_trace(payload)
        lane_names = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert {"s0/2", "s1/2"} <= lane_names
        totals = {
            event["name"][len("stage:"):]: event["args"]["total_s"]
            for event in payload["traceEvents"]
            if event["ph"] == "B" and event.get("args", {}).get("synthetic")
        }
        # The stage lane carries exactly the --profile numbers.
        assert totals == profile["stages"]

    def test_stats_subcommand_renders_manifests(self, tmp_path, capsys) -> None:
        cache = tmp_path / "cache"
        trace = tmp_path / "t.json"
        assert main(
            [
                "synthesize", "--bound", "4", "--axiom", "sc_per_loc",
                "--cache-dir", str(cache), "--trace", str(trace),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["stats", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "run manifests" in out
        assert "synthesize" in out
        assert main(["stats", "--cache-dir", str(cache), "--json"]) == 0
        manifests = json.loads(capsys.readouterr().out)
        assert manifests[0]["kind"] == MANIFEST_KIND
        assert main(
            ["stats", "--cache-dir", str(cache), "--key", "zzzz"]
        ) == 0
        assert "no run manifests" in capsys.readouterr().out


class TestProfileIsARegistryView:
    def test_stage_profile_schema_pinned(self) -> None:
        from repro.reporting import render_stage_profile

        result = synthesize(config_for())
        document = json.loads(
            render_stage_profile(result.stats, result.stats.runtime_s)
        )
        assert document["kind"] == "stage-profile"
        assert document["schema"] == 1
        expected = {
            name: round(seconds, 6)
            for name, seconds in result.stats.stage_times.items()
        }
        assert document["stages"] == expected
        registry = registry_from_suite_stats(result.stats)
        assert document["stages"] == {
            name[len("stage_s."):]: round(value, 6)
            for name, value in registry.gauges.items()
            if name.startswith("stage_s.")
        }


class TestProgressReporter:
    def test_disabled_for_non_tty(self) -> None:
        assert not progress_enabled(StringIO())

    def test_disabled_under_ci(self, monkeypatch) -> None:
        monkeypatch.setenv("CI", "1")

        class FakeTty(StringIO):
            def isatty(self) -> bool:
                return True

        assert not progress_enabled(FakeTty())

    def test_renders_and_clears_line(self) -> None:
        stream = StringIO()
        progress = ProgressReporter(
            "synthesize", 2, stream=stream, enabled=True
        )
        progress.update("s0/2")
        progress.update("s1/2")
        progress.finish()
        output = stream.getvalue()
        assert "[synthesize] 1/2 shards" in output
        assert "[synthesize] 2/2 shards" in output
        assert output.endswith("\r")

    def test_disabled_reporter_writes_nothing(self) -> None:
        stream = StringIO()
        progress = ProgressReporter("x", 3, stream=stream, enabled=False)
        progress.update()
        progress.finish()
        assert stream.getvalue() == ""

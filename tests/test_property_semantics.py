"""Property-based tests of the execution semantics on random ELTs.

Invariants checked on arbitrary well-formed programs and witnesses:

* communication edges only relate same-location events;
* reads have at most one rf source; from-reads agrees with rf/co;
* rf_ptw is same-core, same-VA, and covers every user-facing access;
* effective PAs come from the walk value flow;
* the transistency predicate refines the consistency predicate
  (x86t_elt permits => x86tso permits);
* every synthesized-suite invariant holds for random witnesses too.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import x86t_elt, x86tso
from repro.mtm import EventKind, names
from repro.synth import enumerate_witnesses

from .strategies import executions, programs

SETTINGS = dict(max_examples=40, deadline=None)


@given(executions(max_events=7))
@settings(**SETTINGS)
def test_com_is_same_location(execution) -> None:
    sloc = execution.relation(names.SLOC)
    for edge in execution.relation(names.COM):
        assert edge in sloc


@given(executions(max_events=7))
@settings(**SETTINGS)
def test_reads_have_at_most_one_source(execution) -> None:
    seen: set[str] = set()
    for _src, dst in execution._rf:
        assert dst not in seen
        seen.add(dst)


@given(executions(max_events=7))
@settings(**SETTINGS)
def test_fr_agrees_with_rf_and_co(execution) -> None:
    rf_source = {dst: src for src, dst in execution._rf}
    fr = execution.relation(names.FR)
    co = execution.relation(names.CO)
    sloc = execution.relation(names.SLOC)
    for r, w in fr:
        source = rf_source.get(r)
        if source is None:
            # Initial-value read: fr to every same-location writer.
            assert (r, w) in sloc
        else:
            assert (source, w) in co
    # Completeness: every co-successor of a read's source is fr-reachable.
    for r, source in rf_source.items():
        for a, b in co:
            if a == source:
                assert (r, b) in fr


@given(executions(max_events=7))
@settings(**SETTINGS)
def test_rf_ptw_is_same_core_same_va_and_total_on_users(execution) -> None:
    program = execution.program
    sourced = set()
    for walk, user in execution.rf_ptw:
        walk_event = program.events[walk]
        user_event = program.events[user]
        assert walk_event.kind is EventKind.PT_WALK
        assert walk_event.core == user_event.core
        assert walk_event.va == user_event.va
        sourced.add(user)
    expected = {
        eid
        for eid, event in program.events.items()
        if event.is_user and event.is_memory_event
    }
    if program.mcm_mode:
        assert not sourced
    else:
        assert sourced == expected


@given(executions(max_events=7))
@settings(**SETTINGS)
def test_effective_pas_follow_walk_values(execution) -> None:
    if execution.program.mcm_mode:
        return
    for walk, user in execution.rf_ptw:
        assert execution.pa_of[user] == execution.mapping_of_walk[walk][1]


@given(executions(max_events=7))
@settings(**SETTINGS)
def test_transistency_refines_consistency(execution) -> None:
    # x86t_elt = x86tso + extra axioms, so permitting implies permitting.
    if x86t_elt().permits(execution):
        assert x86tso().permits(execution)


@given(executions(max_events=7))
@settings(**SETTINGS)
def test_verdict_is_deterministic(execution) -> None:
    model = x86t_elt()
    assert model.check(execution).results == model.check(execution).results


@given(programs(max_events=6))
@settings(**SETTINGS)
def test_every_witness_is_wellformed_and_checkable(program) -> None:
    model = x86t_elt()
    count = 0
    for witness in enumerate_witnesses(program):
        model.check(witness)
        count += 1
        if count >= 30:
            break
    assert count >= 1  # at least the all-initial execution exists


@given(programs(max_events=6), st.integers(min_value=0, max_value=10))
@settings(**SETTINGS)
def test_relaxations_preserve_wellformedness(program, seed) -> None:
    from repro.synth import relaxed_program, removal_groups

    groups = removal_groups(program)
    if not groups:
        return
    group = groups[seed % len(groups)]
    reduced = relaxed_program(program, group)
    # The reduced program must validate and have enumerable witnesses.
    assert reduced.size == program.size - len(group)
    for index, _ in enumerate(enumerate_witnesses(reduced)):
        if index >= 5:
            break

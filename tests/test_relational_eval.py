"""Unit tests for the reference relational evaluator (error paths and
constructs not already covered by the exhaustive property cross-check)."""

from __future__ import annotations

import pytest

from repro.errors import RelationalError
from repro.relational import (
    Iden,
    Instance,
    Rel,
    TupleSet,
    Univ,
    eval_expr,
    eval_formula,
    exists,
    forall,
)
from repro.relational.ast import Literal, VarRef


@pytest.fixture()
def instance() -> Instance:
    return Instance(
        ["a", "b", "c"],
        {
            "r": TupleSet.pairs([("a", "b"), ("b", "c")]),
            "s": TupleSet.unary(["a", "b"]),
        },
    )


R = Rel("r", 2)
S = Rel("s", 1)


class TestExpressions:
    def test_rel_lookup(self, instance) -> None:
        assert eval_expr(R, instance) == instance.relation("r")

    def test_unknown_relation(self, instance) -> None:
        with pytest.raises(RelationalError):
            eval_expr(Rel("nope", 2), instance)

    def test_iden_and_univ(self, instance) -> None:
        assert eval_expr(Iden(), instance) == TupleSet.identity(["a", "b", "c"])
        assert eval_expr(Univ(), instance) == TupleSet.unary(["a", "b", "c"])

    def test_literal(self, instance) -> None:
        ts = TupleSet.pairs([("c", "c")])
        assert eval_expr(Literal(ts), instance) == ts

    def test_unbound_variable(self, instance) -> None:
        with pytest.raises(RelationalError, match="unbound"):
            eval_expr(VarRef("x"), instance)

    def test_join_and_closure(self, instance) -> None:
        image = eval_expr(S.dot(R), instance)
        assert image == TupleSet.unary(["b", "c"])
        closed = eval_expr(R.plus(), instance)
        assert ("a", "c") in closed

    def test_star_includes_identity(self, instance) -> None:
        starred = eval_expr(R.star(), instance)
        assert ("c", "c") in starred

    def test_transpose(self, instance) -> None:
        assert ("b", "a") in eval_expr(R.t(), instance)

    def test_difference_and_product(self, instance) -> None:
        diff = eval_expr(R - R, instance)
        assert diff.is_empty()
        prod = eval_expr(S.product(S), instance)
        assert len(prod) == 4


class TestFormulas:
    def test_subset_and_eq(self, instance) -> None:
        assert eval_formula(R.in_(R.plus()), instance)
        assert not eval_formula(R.plus().in_(R), instance)
        assert eval_formula(R.eq(R), instance)

    def test_cardinalities(self, instance) -> None:
        assert not eval_formula(S.one(), instance)
        assert not eval_formula(S.lone(), instance)
        single = Instance(["a"], {"s": TupleSet.unary(["a"])})
        assert eval_formula(Rel("s", 1).one(), single)

    def test_quantifiers(self, instance) -> None:
        # all x in s | some x.r  — a->b, b->c both exist.
        assert eval_formula(forall("x", S, lambda x: x.dot(R).some()), instance)
        # some x in s | no x.r — neither a nor b lacks a successor.
        assert not eval_formula(
            exists("x", S, lambda x: x.dot(R).no_()), instance
        )

    def test_quantifier_domain_must_be_unary(self, instance) -> None:
        with pytest.raises(RelationalError):
            eval_formula(forall("x", R, lambda x: x.some()), instance)

    def test_boolean_connectives(self, instance) -> None:
        t = R.in_(R)
        f = R.plus().in_(R)
        assert eval_formula(t.and_(t), instance)
        assert not eval_formula(t.and_(f), instance)
        assert eval_formula(t.or_(f), instance)
        assert eval_formula(f.implies(f), instance)
        assert eval_formula(f.not_(), instance)


class TestInstance:
    def test_stray_atoms_rejected(self) -> None:
        with pytest.raises(RelationalError):
            Instance(["a"], {"r": TupleSet.pairs([("a", "zz")])})

    def test_with_relation(self, instance) -> None:
        updated = instance.with_relation("r", TupleSet.empty(2))
        assert updated.relation("r").is_empty()
        assert not instance.relation("r").is_empty()

    def test_equality(self) -> None:
        a = Instance(["a"], {"s": TupleSet.unary(["a"])})
        b = Instance(["a"], {"s": TupleSet.unary(["a"])})
        assert a == b

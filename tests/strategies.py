"""Hypothesis strategies for random valid ELT programs and executions.

The generator mirrors the legality rules the builder enforces (TLB hits
only on live entries, remap IPI fan-out to every core, one dirty-bit ghost
per write), so every drawn program is well-formed by construction and the
property tests exercise the *semantics*, not input validation.

Strategy menu:

* :func:`programs` — whole well-formed transistency ``Program``\\ s (user
  accesses, RMWs, spurious INVLPGs, PTE writes with remap IPI fan-out,
  optional fences);
* :func:`vm_programs` — programs guaranteed to exercise the VM
  vocabulary (at least one PTE write), the interesting inputs for
  model-differencing properties;
* :func:`executions` — a random candidate execution of a random program;
* :func:`witness_lists` — a program together with a prefix of its
  candidate-execution enumeration (shared inputs for metamorphic
  comparisons);
* :func:`catalog_model_names` / :func:`catalog_model_pairs` — models
  drawn from the catalog, for properties quantified over model pairs.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.models import CATALOG
from repro.mtm import Event, EventKind, Execution, Program, ProgramBuilder

VAS = ("x", "y")
INITIAL = {"x": "pa_x", "y": "pa_y"}


def _event_cost(op: str, hit: bool, num_threads: int, mcm: bool) -> int:
    if op == "r":
        return 1 if (hit or mcm) else 2
    if op == "w":
        return 2 if (hit or mcm) else 3
    if op == "rmw":
        return (3 if not mcm else 2) + (0 if hit else 1 if not mcm else 0)
    if op == "wpte":
        return 1 + num_threads
    return 1  # inv, fence


@st.composite
def programs(
    draw,
    max_threads: int = 2,
    max_events: int = 8,
    mcm: bool = False,
    allow_vm: bool = True,
    allow_fences: bool = False,
) -> Program:
    num_threads = draw(st.integers(min_value=1, max_value=max_threads))
    builder = ProgramBuilder(initial_map=dict(INITIAL), mcm_mode=mcm)
    threads = [builder.thread() for _ in range(num_threads)]
    # Shadow TLB: (thread index, va) -> walk event for hit decisions.
    live: dict[tuple[int, str], Event] = {}
    budget = max_events

    ops = ["r", "w"]
    if allow_fences:
        ops.append("fence")
    if not mcm:
        ops.append("rmw")
        if allow_vm:
            ops.extend(["inv", "wpte"])

    num_ops = draw(st.integers(min_value=1, max_value=5))
    for _ in range(num_ops):
        tid = draw(st.integers(min_value=0, max_value=num_threads - 1))
        op = draw(st.sampled_from(ops))
        va = draw(st.sampled_from(VAS))
        want_hit = draw(st.booleans())
        hit = want_hit and (tid, va) in live and not mcm
        cost = _event_cost(op, hit, num_threads, mcm)
        if cost > budget:
            continue
        thread = threads[tid]
        if op == "r" or op == "w":
            walk = live[(tid, va)] if hit else None
            event = (
                thread.read(va, walk=walk)
                if op == "r"
                else thread.write(va, walk=walk)
            )
            if not mcm and not hit:
                live[(tid, va)] = builder.walk_of(event)
        elif op == "rmw":
            walk = live[(tid, va)] if hit else None
            read, _write = thread.rmw(va, walk=walk)
            if not mcm and not hit:
                live[(tid, va)] = builder.walk_of(read)
        elif op == "fence":
            thread.fence()
        elif op == "inv":
            # Spurious INVLPG: only useful surrounded by accesses, but
            # structurally legal anywhere.
            thread.invlpg(va)
            live.pop((tid, va), None)
        elif op == "wpte":
            target = draw(
                st.sampled_from(
                    ["pa_fresh"] + [INITIAL[v] for v in VAS if v != va]
                )
            )
            wpte = thread.pte_write(va, target)
            live.pop((tid, va), None)
            for other_tid, other in enumerate(threads):
                if other is not thread:
                    other.invlpg_for(wpte)
                    live.pop((other_tid, va), None)
            cost += 0  # IPI costs were charged up front
        budget -= cost
        if budget <= 0:
            break
    # Ensure at least one event exists.
    if not any(builder.build().threads for _ in [0]):  # pragma: no cover
        threads[0].read("x")
    program = builder.build()
    if program.size == 0:  # pragma: no cover - defensive
        threads[0].read("x")
        program = builder.build()
    return program


@st.composite
def vm_programs(draw, max_threads: int = 2, max_events: int = 8) -> Program:
    """A well-formed transistency program guaranteed to exercise the VM
    vocabulary: at least one PTE write (with its remap IPI fan-out) rides
    alongside whatever :func:`programs` drew.  These are the inputs where
    model differencing is interesting — catalog entries only disagree
    through translation-visible behavior."""
    program = draw(
        programs(max_threads=max_threads, max_events=max(2, max_events - 3))
    )
    if any(
        e.kind is EventKind.PTE_WRITE for e in program.events.values()
    ):
        return program
    # Rebuild with a remap appended to a drawn thread (builders are
    # single-shot, so replay the original threads' user instructions;
    # RMW pairs replay as plain read+write, TLB hits re-walk — both stay
    # well-formed, which is all these inputs promise).
    builder = ProgramBuilder(initial_map=dict(INITIAL))
    threads = [builder.thread() for _ in range(len(program.threads))]
    for thread, eids in zip(threads, program.threads):
        for eid in eids:
            event = program.events[eid]
            if event.kind is EventKind.READ:
                thread.read(event.va)
            elif event.kind is EventKind.WRITE:
                thread.write(event.va)
            elif event.kind is EventKind.INVLPG:
                thread.invlpg(event.va)
            elif event.kind is EventKind.FENCE:
                thread.fence()
    target_thread = threads[draw(st.integers(0, len(threads) - 1))]
    wpte = target_thread.pte_write(
        draw(st.sampled_from(VAS)), "pa_fresh"
    )
    for other in threads:
        if other is not target_thread:
            other.invlpg_for(wpte)
    return builder.build()


def catalog_model_names() -> st.SearchStrategy:
    """A model name drawn from the catalog, in catalog order."""
    return st.sampled_from(list(CATALOG))


@st.composite
def catalog_model_pairs(draw, distinct: bool = True):
    """An ordered (reference, subject) pair of instantiated catalog
    models."""
    names = list(CATALOG)
    ref = draw(st.sampled_from(names))
    pool = [n for n in names if n != ref] if distinct else names
    sub = draw(st.sampled_from(pool))
    return CATALOG[ref](), CATALOG[sub]()


@st.composite
def witness_lists(
    draw, max_witnesses: int = 40, **program_kwargs
) -> tuple[Program, list[Execution]]:
    """A program plus a prefix of its candidate-execution enumeration —
    the shared input shape for metamorphic comparison properties."""
    from repro.synth import enumerate_witnesses

    program = draw(programs(**program_kwargs))
    witnesses = []
    for index, witness in enumerate(enumerate_witnesses(program)):
        witnesses.append(witness)
        if index + 1 >= max_witnesses:
            break
    return program, witnesses


@st.composite
def executions(draw, **program_kwargs) -> Execution:
    """A random candidate execution: random program, random witness."""
    _program, witnesses = draw(witness_lists(**program_kwargs))
    if not witnesses:  # pragma: no cover - every valid program has some
        return Execution(_program)
    return draw(st.sampled_from(witnesses))

"""Hypothesis strategies for random valid ELT programs and executions.

The generator mirrors the legality rules the builder enforces (TLB hits
only on live entries, remap IPI fan-out to every core, one dirty-bit ghost
per write), so every drawn program is well-formed by construction and the
property tests exercise the *semantics*, not input validation.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.mtm import Event, Execution, Program, ProgramBuilder

VAS = ("x", "y")
INITIAL = {"x": "pa_x", "y": "pa_y"}


def _event_cost(op: str, hit: bool, num_threads: int, mcm: bool) -> int:
    if op == "r":
        return 1 if (hit or mcm) else 2
    if op == "w":
        return 2 if (hit or mcm) else 3
    if op == "rmw":
        return (3 if not mcm else 2) + (0 if hit else 1 if not mcm else 0)
    if op == "wpte":
        return 1 + num_threads
    return 1  # inv, fence


@st.composite
def programs(
    draw,
    max_threads: int = 2,
    max_events: int = 8,
    mcm: bool = False,
    allow_vm: bool = True,
) -> Program:
    num_threads = draw(st.integers(min_value=1, max_value=max_threads))
    builder = ProgramBuilder(initial_map=dict(INITIAL), mcm_mode=mcm)
    threads = [builder.thread() for _ in range(num_threads)]
    # Shadow TLB: (thread index, va) -> walk event for hit decisions.
    live: dict[tuple[int, str], Event] = {}
    budget = max_events

    ops = ["r", "w"]
    if not mcm:
        ops.append("rmw")
        if allow_vm:
            ops.extend(["inv", "wpte"])

    num_ops = draw(st.integers(min_value=1, max_value=5))
    for _ in range(num_ops):
        tid = draw(st.integers(min_value=0, max_value=num_threads - 1))
        op = draw(st.sampled_from(ops))
        va = draw(st.sampled_from(VAS))
        want_hit = draw(st.booleans())
        hit = want_hit and (tid, va) in live and not mcm
        cost = _event_cost(op, hit, num_threads, mcm)
        if cost > budget:
            continue
        thread = threads[tid]
        if op == "r" or op == "w":
            walk = live[(tid, va)] if hit else None
            event = (
                thread.read(va, walk=walk)
                if op == "r"
                else thread.write(va, walk=walk)
            )
            if not mcm and not hit:
                live[(tid, va)] = builder.walk_of(event)
        elif op == "rmw":
            walk = live[(tid, va)] if hit else None
            read, _write = thread.rmw(va, walk=walk)
            if not mcm and not hit:
                live[(tid, va)] = builder.walk_of(read)
        elif op == "inv":
            # Spurious INVLPG: only useful surrounded by accesses, but
            # structurally legal anywhere.
            thread.invlpg(va)
            live.pop((tid, va), None)
        elif op == "wpte":
            target = draw(
                st.sampled_from(
                    ["pa_fresh"] + [INITIAL[v] for v in VAS if v != va]
                )
            )
            wpte = thread.pte_write(va, target)
            live.pop((tid, va), None)
            for other_tid, other in enumerate(threads):
                if other is not thread:
                    other.invlpg_for(wpte)
                    live.pop((other_tid, va), None)
            cost += 0  # IPI costs were charged up front
        budget -= cost
        if budget <= 0:
            break
    # Ensure at least one event exists.
    if not any(builder.build().threads for _ in [0]):  # pragma: no cover
        threads[0].read("x")
    program = builder.build()
    if program.size == 0:  # pragma: no cover - defensive
        threads[0].read("x")
        program = builder.build()
    return program


@st.composite
def executions(draw, **program_kwargs) -> Execution:
    """A random candidate execution: random program, random witness."""
    from repro.synth import enumerate_witnesses

    program = draw(programs(**program_kwargs))
    witnesses = []
    for index, witness in enumerate(enumerate_witnesses(program)):
        witnesses.append(witness)
        if index >= 40:
            break
    if not witnesses:  # pragma: no cover - every valid program has some
        return Execution(program)
    return draw(st.sampled_from(witnesses))

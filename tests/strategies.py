"""Hypothesis strategies for random valid ELT programs and executions.

The generators now live in :mod:`repro.fuzz.generators` — the fuzzing
pipeline owns them (seeded, pure-function-of-(seed, stream, attempt)
generation with no global ``random`` state), and this module is a thin
re-export so the property-test suite keeps its historical import path.

Strategy menu (see :mod:`repro.fuzz.generators` for docs):

* :func:`programs` / :func:`vm_programs` — well-formed transistency
  programs (the VM variant guarantees at least one PTE write);
* :func:`executions` / :func:`witness_lists` — candidate executions and
  enumeration prefixes over random programs;
* :func:`catalog_model_names` / :func:`catalog_model_pairs` — models
  drawn from the catalog, for properties quantified over model pairs.
"""

from __future__ import annotations

from repro.fuzz.generators import (  # noqa: F401
    INITIAL,
    VAS,
    catalog_model_names,
    catalog_model_pairs,
    executions,
    programs,
    vm_programs,
    witness_lists,
)

__all__ = [
    "INITIAL",
    "VAS",
    "catalog_model_names",
    "catalog_model_pairs",
    "executions",
    "programs",
    "vm_programs",
    "witness_lists",
]

"""Unit tests for ELT programs (structure + placement rules)."""

from __future__ import annotations

import pytest

from repro.errors import VocabularyError, WellFormednessError
from repro.mtm import Event, EventKind, Program, ProgramBuilder


class TestEvent:
    def test_fence_takes_no_address(self) -> None:
        with pytest.raises(VocabularyError):
            Event("e0", EventKind.FENCE, 0, va="x")

    def test_memory_event_requires_va(self) -> None:
        with pytest.raises(VocabularyError):
            Event("e0", EventKind.READ, 0)

    def test_pte_write_requires_target(self) -> None:
        with pytest.raises(VocabularyError):
            Event("e0", EventKind.PTE_WRITE, 0, va="x")

    def test_only_pte_write_carries_target(self) -> None:
        with pytest.raises(VocabularyError):
            Event("e0", EventKind.READ, 0, va="x", pa="pa_b")

    def test_classification(self) -> None:
        read = Event("e0", EventKind.READ, 0, va="x")
        walk = Event("e1", EventKind.PT_WALK, 0, va="x")
        inv = Event("e2", EventKind.INVLPG, 0, va="x")
        assert read.is_user and read.is_memory_event and read.is_read_like
        assert walk.is_ghost and walk.is_memory_event and walk.accesses_pte
        assert inv.is_support and not inv.is_memory_event


class TestBuilderBasics:
    def test_read_invokes_walk(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        c0.read("x")
        program = b.build()
        assert program.size == 2
        kinds = sorted(e.kind.value for e in program.events.values())
        assert kinds == ["R", "Rptw"]

    def test_write_invokes_walk_and_dirty_bit(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        c0.write("x")
        program = b.build()
        assert program.size == 3
        kinds = sorted(e.kind.value for e in program.events.values())
        assert kinds == ["Rptw", "W", "Wdb"]

    def test_autofill_gives_unique_pas(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        c0.read("x")
        c0.read("y")
        program = b.build()
        pas = set(program.initial_map.values())
        assert len(pas) == 2

    def test_walk_sharing(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        r0 = c0.read("x")
        c0.read("x", walk=b.walk_of(r0))
        program = b.build()
        # 2 reads share 1 walk.
        assert program.size == 3

    def test_hit_on_evicted_entry_rejected(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        r0 = c0.read("x")
        walk = b.walk_of(r0)
        c0.invlpg("x")
        with pytest.raises(WellFormednessError):
            c0.read("x", walk=walk)

    def test_hit_on_replaced_entry_rejected(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        r0 = c0.read("x")
        old_walk = b.walk_of(r0)
        c0.read("x")  # capacity-evicts and re-walks
        with pytest.raises(WellFormednessError):
            c0.read("x", walk=old_walk)

    def test_cross_core_hit_rejected(self) -> None:
        b = ProgramBuilder()
        c0, c1 = b.thread(), b.thread()
        r0 = c0.read("x")
        with pytest.raises(WellFormednessError):
            c1.read("x", walk=b.walk_of(r0))

    def test_pte_write_appends_local_invlpg(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        wpte = c0.pte_write("x", "pa_b")
        program = b.build()
        thread = program.threads[0]
        assert program.events[thread[0]].kind is EventKind.PTE_WRITE
        assert program.events[thread[1]].kind is EventKind.INVLPG
        assert (wpte.eid, thread[1]) in program.remap

    def test_remap_requires_invlpg_on_every_core(self) -> None:
        b = ProgramBuilder()
        c0, c1 = b.thread(), b.thread()
        c0.pte_write("x", "pa_b")
        c1.read("y")
        # Missing invlpg_for on c1.
        with pytest.raises(WellFormednessError):
            b.build()

    def test_remap_complete_with_remote_invlpg(self) -> None:
        b = ProgramBuilder()
        c0, c1 = b.thread(), b.thread()
        wpte = c0.pte_write("x", "pa_b")
        c1.invlpg_for(wpte)
        program = b.build()
        assert len(program.remap) == 2

    def test_rmw_shares_walk(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        read, write = c0.rmw("x")
        program = b.build()
        assert (read.eid, write.eid) in program.rmw
        # R + W + Wdb + one shared walk.
        assert program.size == 4

    def test_positions_ghosts_inherit_parent_slot(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        w0 = c0.write("x")
        r1 = c0.read("y")
        program = b.build()
        assert program.position(b.walk_of(w0).eid) == program.position(w0.eid)
        assert program.position(w0.eid) < program.position(r1.eid)


class TestProgramValidation:
    def test_ghost_in_thread_rejected(self) -> None:
        events = {
            "r": Event("r", EventKind.READ, 0, va="x"),
            "w": Event("w", EventKind.PT_WALK, 0, va="x"),
        }
        with pytest.raises(WellFormednessError):
            Program(
                events=events,
                threads=(("r", "w"),),
                ghosts={"r": ("w",)},
                initial_map={"x": "pa_a"},
            )

    def test_orphan_ghost_rejected(self) -> None:
        events = {
            "r": Event("r", EventKind.READ, 0, va="x"),
            "w": Event("w", EventKind.PT_WALK, 0, va="x"),
            "w2": Event("w2", EventKind.PT_WALK, 0, va="x"),
        }
        with pytest.raises(WellFormednessError):
            Program(
                events=events,
                threads=(("r",),),
                ghosts={"r": ("w",)},
                initial_map={"x": "pa_a"},
            )

    def test_write_without_dirty_bit_rejected(self) -> None:
        events = {
            "w": Event("w", EventKind.WRITE, 0, va="x"),
            "pw": Event("pw", EventKind.PT_WALK, 0, va="x"),
        }
        with pytest.raises(WellFormednessError):
            Program(
                events=events,
                threads=(("w",),),
                ghosts={"w": ("pw",)},
                initial_map={"x": "pa_a"},
            )

    def test_ghost_wrong_core_rejected(self) -> None:
        events = {
            "r": Event("r", EventKind.READ, 0, va="x"),
            "pw": Event("pw", EventKind.PT_WALK, 1, va="x"),
        }
        with pytest.raises(WellFormednessError):
            Program(
                events=events,
                threads=(("r",), ()),
                ghosts={"r": ("pw",)},
                initial_map={"x": "pa_a"},
            )

    def test_non_injective_initial_map_rejected(self) -> None:
        b = ProgramBuilder()
        b.map("x", "pa_a").map("y", "pa_a")
        c0 = b.thread()
        c0.read("x")
        c0.read("y")
        with pytest.raises(WellFormednessError):
            b.build()

    def test_missing_mapping_autofilled_by_builder(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        c0.read("x")
        program = b.build()
        assert "x" in program.initial_map

    def test_rmw_must_be_adjacent(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        r, w = c0.rmw("x")
        program = b.build()
        # Rebuild with an interloper between r and w.
        events = dict(program.events)
        inv = Event("spur", EventKind.INVLPG, 0, va="x")
        events["spur"] = inv
        thread = list(program.threads[0])
        thread.insert(thread.index(w.eid), "spur")
        with pytest.raises(WellFormednessError):
            Program(
                events=events,
                threads=(tuple(thread),),
                ghosts=program.ghosts,
                rmw=program.rmw,
                initial_map=program.initial_map,
            )

    def test_size_counts_ghosts(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        c0.write("x")
        c0.read("x", walk=None)
        program = b.build()
        # W + Wdb + walk + R + walk = 5 (instruction bound counts ghosts).
        assert program.size == 5

"""Coverage for :mod:`repro.fuzz` — the beyond-the-bound differential
fuzzing pipeline.

The determinism contract under test everywhere: program bytes are a pure
function of ``(seed, round, global attempt index)``, findings are
deduplicated by shrunk orbit class with an order-free winner rule, so
the suite bytes serialized from a fixed-seed run are byte-identical for
every ``--jobs`` and shard split.

The standing pair is the AMD INVLPG erratum (``x86t_elt`` vs
``x86t_amd_bug``): its minimal discriminators fit well inside the fuzz
bound of 8, so a pinned seed rediscovers the erratum in CI time.  (SC vs
x86-TSO needs 10 events once page-table walks and dirty-bit ghosts are
charged, which is why it is *not* the smoke pair.)
"""

from __future__ import annotations

import json

from hypothesis import given, settings

import pytest

from repro.cli import main
from repro.fuzz import (
    CoverageMap,
    DifferentialOracle,
    FuzzConfig,
    FuzzStats,
    build_program,
    build_vm_program,
    derive_seed,
    fuzz_identity,
    random_program,
    run_fuzz,
    shrink,
)
from repro.fuzz.coverage import (
    PROFILE_KWARGS,
    PROFILE_NAMES,
    behavior_key,
    class_digest,
)
from repro.fuzz.generators import RngChooser, programs
from repro.fuzz.runner import fuzz_entry_key
from repro.litmus import suite_from_fuzz
from repro.models import x86t_amd_bug, x86t_elt
from repro.mtm import EventKind, Execution, ProgramBuilder
from repro.orchestrate import KIND_FUZZ_RUN, KIND_FUZZ_SHARD, SuiteStore
from repro.synth.relax import is_minimal

SETTINGS = dict(max_examples=20, deadline=None)

#: Pinned smoke schedule: fast, and known to rediscover the erratum.
PINNED = dict(seed=0, bound=8, rounds=2, attempts_per_round=32)


def amd_config(**overrides) -> FuzzConfig:
    kwargs = dict(PINNED)
    kwargs.update(overrides)
    return FuzzConfig(**kwargs)


def fig11_program(pad_reads: int = 0):
    """The AMD-erratum discriminator program (paper Fig. 11): a remap
    with IPI fan-out racing a read on the remapped VA.  ``pad_reads``
    appends shrinkable same-thread reads of an unrelated VA."""
    b = ProgramBuilder()
    b.map("x", "pa_a")
    if pad_reads:
        b.map("y", "pa_y")
    c0, c1 = b.thread(), b.thread()
    wpte = c0.pte_write("x", "pa_b")
    c1.invlpg_for(wpte)
    c1.read("x")
    for _ in range(pad_reads):
        c0.read("y")
    return b.build()


class TestDeriveSeed:
    def test_pure_function_of_arguments(self) -> None:
        assert derive_seed(0, 1, 2) == derive_seed(0, 1, 2)

    def test_streams_and_attempts_are_independent(self) -> None:
        seen = {
            derive_seed(seed, stream, attempt)
            for seed in range(3)
            for stream in range(3)
            for attempt in range(3)
        }
        assert len(seen) == 27  # no collisions in a small grid

    def test_argument_order_matters(self) -> None:
        assert derive_seed(1, 2, 3) != derive_seed(3, 2, 1)


class TestGenerators:
    @pytest.mark.parametrize("bound", [8, 12])
    def test_programs_fit_the_requested_bound(self, bound: int) -> None:
        for seed in range(60):
            program = random_program(seed, max_events=bound)
            assert 1 <= program.size <= bound

    def test_same_seed_same_program(self) -> None:
        for seed in range(20):
            first = random_program(seed, stream=1, attempt=seed)
            second = random_program(seed, stream=1, attempt=seed)
            assert first.size == second.size
            assert [
                (e.kind, e.va) for e in first.events.values()
            ] == [(e.kind, e.va) for e in second.events.values()]

    def test_profile_biases_are_legal_builder_kwargs(self) -> None:
        for name in PROFILE_NAMES:
            program = build_program(
                RngChooser(derive_seed(7, 0, 0)), **PROFILE_KWARGS[name]
            )
            assert program.size >= 1

    def test_vm_programs_always_carry_a_pte_write(self) -> None:
        for seed in range(40):
            program = build_vm_program(RngChooser(derive_seed(seed, 0, 0)))
            kinds = {event.kind for event in program.events.values()}
            assert EventKind.PTE_WRITE in kinds

    def test_generation_is_free_of_global_random_state(self) -> None:
        import random as global_random

        global_random.seed(123)
        first = random_program(5)
        global_random.seed(456)
        second = random_program(5)
        assert [
            (e.kind, e.va) for e in first.events.values()
        ] == [(e.kind, e.va) for e in second.events.values()]


class TestCoverageMap:
    def test_behavior_key_rendering(self) -> None:
        assert behavior_key("both-forbid", ("sc_per_loc",)) == (
            "both-forbid|sc_per_loc"
        )
        assert behavior_key("both-permit", ()) == "both-permit|-"

    def test_novelty_counts_new_classes_and_behaviors_once(self) -> None:
        coverage = CoverageMap()
        first = coverage.observe_attempt(
            "mixed", "aa", (3, 0, 0, 0), [("both-permit", ())]
        )
        assert first == 2  # new class + new behavior
        repeat = coverage.observe_attempt(
            "mixed", "aa", (3, 0, 0, 0), [("both-permit", ())]
        )
        assert repeat == 0
        new_behavior = coverage.observe_attempt(
            "vm_heavy", "aa", (0, 2, 0, 0), [("both-forbid", ("invlpg",))]
        )
        assert new_behavior == 1
        assert coverage.class_count == 1
        assert coverage.behavior_count == 2
        assert coverage.agreement["both-permit"] == 6
        assert coverage.novel_by_profile == {"mixed": 2, "vm_heavy": 1}

    def test_saturation_is_last_round_novelty(self) -> None:
        coverage = CoverageMap()
        assert not coverage.saturated
        coverage.finish_round(4)
        assert not coverage.saturated
        coverage.finish_round(0)
        assert coverage.saturated

    def test_allocation_sums_and_block_layout(self) -> None:
        coverage = CoverageMap()
        allocation = coverage.allocate(10)
        assert len(allocation) == 10
        # Block layout in profile order: once a name stops, it never
        # reappears.
        order = [allocation[0]]
        for name in allocation[1:]:
            if name != order[-1]:
                order.append(name)
        assert order == [n for n in PROFILE_NAMES if n in set(allocation)]

    def test_allocation_rewards_novelty_with_exploration_floor(self) -> None:
        coverage = CoverageMap()
        coverage.novel_by_profile["vm_heavy"] = 30
        allocation = coverage.allocate(32)
        counts = {name: allocation.count(name) for name in PROFILE_NAMES}
        assert sum(counts.values()) == 32
        assert counts["vm_heavy"] > counts["mixed"]
        # The +1 exploration floor keeps every profile alive.
        assert all(count >= 1 for count in counts.values())

    def test_snapshot_shape(self) -> None:
        coverage = CoverageMap()
        coverage.observe_attempt("racy", "bb", (1, 0, 0, 0), [("both-permit", ())])
        coverage.finish_round(2)
        snapshot = coverage.snapshot()
        assert snapshot["classes"] == 1
        assert snapshot["behaviors"] == 1
        assert snapshot["round_novelty"] == [2]
        assert snapshot["saturated"] is False
        assert snapshot["novelty_rate"] == 2.0


class TestDifferentialOracle:
    def test_fig11_class_discriminates_and_is_minimal(self) -> None:
        oracle = DifferentialOracle(amd_config())
        summary = oracle.classify(fig11_program())
        assert summary.discriminating
        assert summary.minimal
        assert not summary.truncated
        assert summary.counts[2] >= 1  # only-reference-forbids witnesses
        assert any(
            agreement == "only-reference-forbids" and "invlpg" in violated
            for agreement, violated in summary.signatures
        )

    def test_classify_is_memoized_by_orbit_class(self) -> None:
        oracle = DifferentialOracle(amd_config())
        program = fig11_program()
        first = oracle.classify(program)
        hits_before = oracle.stats.oracle_memo_hits
        second = oracle.classify(program)
        assert second is first
        assert oracle.stats.oracle_memo_hits == hits_before + 1

    def test_judge_selects_a_discriminating_representative(self) -> None:
        config = amd_config()
        oracle = DifferentialOracle(config)
        judgment = oracle.judge(fig11_program())
        assert judgment.execution is not None
        assert config.reference.forbids(judgment.execution)
        assert config.subject.permits(judgment.execution)
        assert judgment.violated_axioms == ("invlpg",)
        assert is_minimal(judgment.execution, config.reference)

    def test_truncation_zeroes_the_summary(self) -> None:
        oracle = DifferentialOracle(amd_config(max_witnesses=1))
        summary = oracle.classify(fig11_program())
        assert summary.truncated
        assert summary.counts == (0, 0, 0, 0)
        assert not summary.discriminating
        assert summary.witnesses == 0
        assert oracle.stats.truncated == 1


class TestShrink:
    def test_non_discriminating_program_returns_none(self) -> None:
        b = ProgramBuilder()
        b.map("x", "pa_a")
        b.thread().read("x")
        assert shrink(b.build(), DifferentialOracle(amd_config())) is None

    def test_already_minimal_input_is_identity(self) -> None:
        oracle = DifferentialOracle(amd_config())
        program = fig11_program()
        outcome = shrink(program, oracle)
        assert outcome is not None
        assert outcome.steps == 0
        assert oracle.canonical_key_of(outcome.program) == (
            oracle.canonical_key_of(program)
        )

    def test_padding_is_shrunk_away(self) -> None:
        oracle = DifferentialOracle(amd_config())
        padded = fig11_program(pad_reads=2)
        outcome = shrink(padded, oracle)
        assert outcome is not None
        assert outcome.steps >= 1
        assert outcome.program.size < padded.size
        assert oracle.stats.shrink_steps == outcome.steps
        judgment = outcome.judgment
        assert judgment.execution is not None
        assert is_minimal(judgment.execution, oracle.reference)


class TestHypothesisProperties:
    """Property coverage over the promoted generator strategies."""

    @settings(**SETTINGS)
    @given(program=programs())
    def test_shrunk_findings_are_discriminating_and_minimal(
        self, program
    ) -> None:
        config = amd_config()
        oracle = DifferentialOracle(config)
        outcome = shrink(program, oracle)
        if outcome is None:
            return  # not discriminating, or descent got stuck — no claim
        execution = outcome.judgment.execution
        assert config.reference.forbids(execution)
        assert config.subject.permits(execution)
        assert is_minimal(execution, config.reference)

    @settings(**SETTINGS)
    @given(program=programs())
    def test_shrinking_a_minimal_program_is_identity(self, program) -> None:
        oracle = DifferentialOracle(amd_config())
        summary = oracle.classify(program)
        if not (summary.discriminating and summary.minimal):
            return
        outcome = shrink(program, oracle)
        assert outcome is not None
        assert outcome.steps == 0
        assert oracle.canonical_key_of(outcome.program) == (
            oracle.canonical_key_of(program)
        )


class TestFuzzStats:
    def test_absorb_sums_counters_and_ors_flags(self) -> None:
        left = FuzzStats(programs_generated=3, oracle_calls=5, shrink_steps=1)
        right = FuzzStats(
            programs_generated=2, oracle_calls=4, truncated=1, timed_out=True
        )
        left.absorb(right)
        assert left.programs_generated == 5
        assert left.oracle_calls == 9
        assert left.shrink_steps == 1
        assert left.truncated == 1
        assert left.timed_out

    def test_to_json_covers_every_summed_field(self) -> None:
        payload = FuzzStats().to_json()
        for name in FuzzStats.SUMMED_FIELDS:
            assert name in payload
        assert {"findings", "timed_out", "degraded", "runtime_s"} <= set(payload)


class TestRunFuzz:
    def test_pinned_seed_rediscovers_the_amd_erratum(self) -> None:
        result = run_fuzz(amd_config())
        assert result.rounds_run == 2
        assert len(result.findings) == 3
        for finding in result.findings:
            assert finding.violated_axioms == ("invlpg",)
            assert finding.program.size <= 6
            assert x86t_elt().forbids(finding.execution)
            assert x86t_amd_bug().permits(finding.execution)
            assert is_minimal(finding.execution, x86t_elt())
        assert result.stats.findings == 3
        assert result.stats.discriminating >= 3
        assert not result.degraded

    def test_jobs_and_shard_splits_are_byte_identical(self) -> None:
        serial = run_fuzz(amd_config(), jobs=1)
        sharded = run_fuzz(amd_config(), jobs=2)
        fine = run_fuzz(amd_config(), jobs=2, shard_count=5)
        baseline = suite_from_fuzz(serial).dumps()
        assert suite_from_fuzz(sharded).dumps() == baseline
        assert suite_from_fuzz(fine).dumps() == baseline
        assert sharded.coverage.snapshot() == serial.coverage.snapshot()
        assert fine.coverage.snapshot() == serial.coverage.snapshot()

    def test_store_roundtrip_and_run_cache(self, tmp_path) -> None:
        store = SuiteStore(tmp_path / "cache")
        config = amd_config()
        first = run_fuzz(config, store=store)
        assert not first.run_cache_hit
        assert first.shard_cache_hits == 0
        assert first.shard_cache_misses == config.rounds  # one shard/round
        second = run_fuzz(config, jobs=2, store=store)
        assert second.run_cache_hit
        assert second.jobs == 2
        assert suite_from_fuzz(second).dumps() == suite_from_fuzz(first).dumps()

    def test_shard_slices_are_reused_across_schedules(self, tmp_path) -> None:
        store = SuiteStore(tmp_path / "cache")
        budgeted = amd_config(time_budget_s=3600.0)
        first = run_fuzz(budgeted, store=store)
        assert not first.stats.timed_out
        # The run entry is keyed by the full identity (budget included),
        # the shard slices by the budget-free identity — so a re-run
        # under a different budget replays every shard.
        rerun = run_fuzz(amd_config(time_budget_s=7200.0), store=store)
        assert not rerun.run_cache_hit
        assert rerun.shard_cache_hits == budgeted.rounds
        assert rerun.shard_cache_misses == 0
        assert suite_from_fuzz(rerun).dumps() == suite_from_fuzz(first).dumps()

    def test_entry_keys_separate_kinds_rounds_and_shards(self) -> None:
        config = amd_config()
        run_key = fuzz_entry_key(config, KIND_FUZZ_RUN)
        from repro.orchestrate.shards import plan_shards

        (spec,) = plan_shards(1)
        shard0 = fuzz_entry_key(config, KIND_FUZZ_SHARD, spec, 0)
        shard1 = fuzz_entry_key(config, KIND_FUZZ_SHARD, spec, 1)
        assert len({run_key, shard0, shard1}) == 3

    def test_identity_excludes_strategy_knobs(self) -> None:
        base = fuzz_identity(amd_config())
        assert fuzz_identity(amd_config(symmetry=False)) == base
        assert fuzz_identity(amd_config(incremental=False)) == base
        assert fuzz_identity(amd_config(seed=1)) != base

    def test_zero_budget_times_out_without_findings_commit(self, tmp_path) -> None:
        store = SuiteStore(tmp_path / "cache")
        config = amd_config(time_budget_s=0.0)
        result = run_fuzz(config, store=store)
        assert result.stats.timed_out
        assert result.rounds_run == 1  # stops at the first round barrier
        # Timed-out runs and shards are never persisted.
        assert store.get(fuzz_entry_key(config, KIND_FUZZ_RUN)) is None


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out


FAST_ARGS = ["--attempts", "8", "--rounds", "1"]


class TestCliFuzz:
    def test_quiet_pair_exits_zero(self, capsys) -> None:
        code, out = run_cli(
            capsys, ["fuzz", "--subject", "x86t_elt", *FAST_ARGS]
        )
        assert code == 0
        assert "findings=0" in out

    def test_default_pair_finds_the_erratum_and_exits_one(self, capsys) -> None:
        code, out = run_cli(capsys, ["fuzz", "--seed", "0"])
        assert code == 1
        assert "fuzz x86t_elt vs x86t_amd_bug" in out
        assert "violates: invlpg" in out
        assert "--- finding 1" in out

    def test_json_document_schema(self, capsys) -> None:
        code, out = run_cli(capsys, ["fuzz", "--seed", "0", "--json"])
        assert code == 1
        document = json.loads(out)
        assert set(document) == {
            "identity", "stats", "coverage", "rounds_run", "findings"
        }
        assert document["identity"]["reference"] == "x86t_elt"
        assert document["stats"]["findings"] == len(document["findings"])
        for finding in document["findings"]:
            assert finding["violates"] == ["invlpg"]
            assert finding["size"] <= 6

    @pytest.mark.parametrize(
        "argv",
        [
            ["fuzz", "--jobs", "0"],
            ["fuzz", "--shards", "0"],
            ["fuzz", "--bound", "0"],
            ["fuzz", "--rounds", "0"],
            ["fuzz", "--attempts", "0"],
            ["fuzz", "--resume"],
            ["fuzz", "--replay"],
            ["fuzz", "--reference", "bogus"],
        ],
    )
    def test_usage_errors_exit_two(self, capsys, argv) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2

    def test_save_and_corpus_then_replay(self, capsys, tmp_path) -> None:
        suite_path = tmp_path / "found.elts"
        corpus_dir = tmp_path / "corpus"
        code, out = run_cli(
            capsys,
            [
                "fuzz", "--seed", "0",
                "--save", str(suite_path),
                "--corpus", str(corpus_dir),
            ],
        )
        assert code == 1
        assert suite_path.exists()
        corpus_files = sorted(corpus_dir.glob("*.elts"))
        assert len(corpus_files) == 3
        code, out = run_cli(
            capsys, ["fuzz", "--replay", "--corpus", str(corpus_dir)]
        )
        assert code == 0
        assert "OK" in out

    def test_replay_flags_a_tampered_corpus(self, capsys, tmp_path) -> None:
        corpus_dir = tmp_path / "corpus"
        run_cli(
            capsys,
            ["fuzz", "--seed", "0", "--corpus", str(corpus_dir)],
        )
        victim = sorted(corpus_dir.glob("*.elts"))[0]
        victim.write_text(
            victim.read_text().replace("violates=invlpg", "violates=causality")
        )
        code, out = run_cli(
            capsys,
            ["fuzz", "--replay", "--corpus", str(corpus_dir), "--json"],
        )
        assert code == 1
        report = json.loads(out)
        assert not report["ok"]
        assert any(
            "drifted" in failure["reason"] for failure in report["failures"]
        )

    def test_profile_appends_fuzz_stats_json(self, capsys) -> None:
        code, out = run_cli(capsys, ["fuzz", *FAST_ARGS, "--profile"])
        profile_line = [
            line for line in out.splitlines() if line.startswith("{")
        ][-1]
        payload = json.loads(profile_line)
        assert "fuzz_stats" in payload
        assert payload["fuzz_stats"]["programs_generated"] == 8

    def test_budget_zero_reports_partial_run(self, capsys) -> None:
        code, out = run_cli(capsys, ["fuzz", *FAST_ARGS, "--budget", "0"])
        assert "NOTE: run hit --budget" in out

    def test_trace_leaves_output_identical_and_writes_manifest(
        self, capsys, tmp_path
    ) -> None:
        plain_code, plain_out = run_cli(capsys, ["fuzz", *FAST_ARGS])
        trace_path = tmp_path / "fuzz-trace.json"
        traced_code, traced_out = run_cli(
            capsys, ["fuzz", *FAST_ARGS, "--trace", str(trace_path)]
        )
        assert traced_code == plain_code
        assert traced_out.replace(
            f"trace written to {trace_path}", ""
        ).rstrip("\n") == plain_out.rstrip("\n")
        payload = json.loads(trace_path.read_text())
        manifest = payload["otherData"]["manifest"]
        assert manifest["command"] == "fuzz"
        assert manifest["identity"]["kind"] == "fuzz"
        assert manifest["fuzz_stats"]["programs_generated"] == 8
        assert manifest["coverage"]["classes"] >= 1

    def test_cache_dir_run_reuse(self, capsys, tmp_path) -> None:
        argv = [
            "fuzz", "--seed", "0", *FAST_ARGS,
            "--cache-dir", str(tmp_path / "cache"),
        ]
        run_cli(capsys, argv)
        code, out = run_cli(capsys, argv)
        assert "run_hit=True" in out

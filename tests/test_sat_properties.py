"""Property-based tests: the CDCL solver against a brute-force oracle."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    SOLVER_CORES,
    Cnf,
    brute_force_count,
    brute_force_models,
    brute_force_satisfiable,
    count_models,
    create_solver,
    solve_cnf,
)

MAX_VARS = 6


def literals(num_vars: int):
    return st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )


@st.composite
def random_cnf(draw) -> Cnf:
    num_vars = draw(st.integers(min_value=1, max_value=MAX_VARS))
    num_clauses = draw(st.integers(min_value=0, max_value=12))
    cnf = Cnf(num_vars)
    for _ in range(num_clauses):
        clause = draw(st.lists(literals(num_vars), min_size=1, max_size=4))
        cnf.add_clause(clause)
    return cnf


@given(random_cnf())
@settings(max_examples=150, deadline=None)
def test_sat_agrees_with_brute_force(cnf: Cnf) -> None:
    expected = brute_force_satisfiable(cnf)
    result = solve_cnf(cnf)
    assert result.satisfiable == expected
    if result.satisfiable:
        assert cnf.evaluate(result.model)


@given(random_cnf())
@settings(max_examples=75, deadline=None)
def test_model_count_agrees_with_brute_force(cnf: Cnf) -> None:
    assert count_models(cnf) == brute_force_count(cnf)


@given(random_cnf())
@settings(max_examples=60, deadline=None)
def test_cores_and_inprocessing_agree_with_brute_force(cnf: Cnf) -> None:
    """Differential enumeration across the solver-core × inprocessing
    matrix.

    Every configuration must enumerate exactly the brute-force model
    set with no duplicates.  The cores (all runnable ones, including
    the C-accelerated core whenever its extension is built) are
    lockstep by contract, so for a fixed inprocessing setting they must
    also produce the same model *order* and the same search counters.
    Inprocessing is forced aggressive (every conflict makes a pass due)
    so the passes actually fire at enumeration-burst boundaries on
    these small formulas.
    """
    from dataclasses import asdict

    expected = {
        tuple(sorted(model.items())) for model in brute_force_models(cnf)
    }
    for inprocess in (False, True):
        orders = []
        stats = []
        for core in SOLVER_CORES:
            solver = create_solver(cnf, core=core, inprocess=inprocess)
            solver._inprocess_min_learned = 1
            solver._inprocess_interval = 1
            models = [
                tuple(sorted(model.items()))
                for model in solver.iter_solutions()
            ]
            assert len(models) == len(set(models))
            assert set(models) == expected
            orders.append(models)
            stats.append(asdict(solver.stats))
        for core, order in zip(SOLVER_CORES, orders):
            assert order == orders[0], f"core {core} diverged in model order"
        for core, stat in zip(SOLVER_CORES, stats):
            assert stat == stats[0], f"core {core} diverged in search counters"


@given(random_cnf(), st.lists(st.integers(min_value=1, max_value=MAX_VARS), max_size=3))
@settings(max_examples=75, deadline=None)
def test_assumptions_agree_with_unit_clauses(cnf: Cnf, assumed_vars) -> None:
    # Solving under assumptions must agree with conjoining unit clauses.
    assumptions = sorted({v for v in assumed_vars})
    from repro.sat import CdclSolver

    solver = CdclSolver(cnf)
    under_assumptions = solver.solve(assumptions=assumptions).satisfiable

    strengthened = Cnf(cnf.num_vars)
    strengthened.add_clauses(cnf.clauses)
    for lit in assumptions:
        strengthened.add_clause([lit])
    assert under_assumptions == brute_force_satisfiable(strengthened)
    # The solver must remain intact for plain solving afterwards.
    assert solver.solve().satisfiable == brute_force_satisfiable(cnf)

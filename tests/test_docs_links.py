"""Documentation link check: every intra-repo markdown link must
resolve.

Scans ``README.md`` and every page under ``docs/`` for markdown links
and validates the repo-relative targets (external ``http(s)``/``mailto``
links are skipped; ``#fragment``-only links are checked against the
target file's headings).  This is the tier-1 face of the CI docs job —
a moved or renamed file fails here, not in a reader's browser.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for our hand-written markdown
#: (no nested brackets, no angle-bracket autolinks in targets).
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _documents() -> list[Path]:
    docs = [REPO_ROOT / "README.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return docs


def _anchor_of(heading: str) -> str:
    """GitHub's heading→anchor slug (lowercase, spaces→dashes, drop
    everything but word characters and dashes)."""
    slug = heading.strip().lower().replace(" ", "-")
    return re.sub(r"[^\w\-]", "", slug)


def _anchors(path: Path) -> set[str]:
    return {
        _anchor_of(match) for match in HEADING_RE.findall(path.read_text())
    }


@pytest.mark.parametrize(
    "document", _documents(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_intra_repo_links_resolve(document: Path) -> None:
    failures = []
    for target in LINK_RE.findall(document.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (document.parent / path_part).resolve()
            if not resolved.exists():
                failures.append(f"{target}: {path_part} does not exist")
                continue
        else:
            resolved = document
        if fragment and resolved.suffix == ".md":
            if fragment not in _anchors(resolved):
                failures.append(
                    f"{target}: no heading for anchor #{fragment}"
                )
    assert not failures, "\n".join(failures)


def test_docs_tree_is_complete() -> None:
    """The documentation pages the README promises must all exist."""
    expected = {
        "ARCHITECTURE.md",
        "CLI.md",
        "SAT_SUBSTRATE.md",
        "INCREMENTAL_SESSIONS.md",
        "DIFFERENCING.md",
        "SYMMETRY.md",
        "BENCHMARKS.md",
        "OBSERVABILITY.md",
        "RESILIENCE.md",
    }
    present = {path.name for path in (REPO_ROOT / "docs").glob("*.md")}
    assert expected <= present

"""Spawn-side helpers for the scheduler timeout test.

Lives in its own module (not the test file) so the worker process only
imports this and `repro.orchestrate.shards` on cold start — importing
the full test module would pull in the whole stack and could eat a
meaningful slice of the shard timeout under a loaded machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.orchestrate.shards import ShardSpec


@dataclass(frozen=True)
class SleepyTask:
    spec: ShardSpec
    attempt: int = 1


def stuck_worker(task: SleepyTask) -> str:
    """Wedges (far past any test timeout) on s0's first attempt."""
    if task.spec.skeleton_index == 0 and task.attempt == 1:
        time.sleep(300)
    return f"{task.spec.label}@{task.attempt}"

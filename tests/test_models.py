"""Model verdict tests: paper-figure oracles + textbook MCM litmus tests.

These are the strongest correctness anchors the paper provides — each
assertion cites where the paper states the expected verdict.
"""

from __future__ import annotations

import pytest

from repro.litmus.classics import ALL_CLASSICS, SC_VERDICTS, TSO_VERDICTS
from repro.litmus.figures import (
    fig2b_sb_elt,
    fig2c_sb_aliased,
    fig4b_remap_chain,
    fig5a_shared_walk,
    fig5b_invlpg_forces_rewalk,
    fig6d_remap_disambiguation,
    fig8_non_minimal_mp,
    fig10a_ptwalk2,
    fig10b_dirtybit3,
    fig11_stale_mapping_after_ipi,
)
from repro.models import (
    MemoryModel,
    sequential_consistency,
    x86t_amd_bug,
    x86t_elt,
    x86tso,
)


@pytest.fixture(scope="module")
def mtm() -> MemoryModel:
    return x86t_elt()


@pytest.fixture(scope="module")
def tso() -> MemoryModel:
    return x86tso()


class TestModelCatalog:
    def test_x86t_elt_has_five_axioms(self, mtm: MemoryModel) -> None:
        assert mtm.axiom_names == (
            "sc_per_loc",
            "rmw_atomicity",
            "causality",
            "invlpg",
            "tlb_causality",
        )

    def test_transistency_extends_consistency(
        self, mtm: MemoryModel, tso: MemoryModel
    ) -> None:
        # §V-A: the transistency predicate includes the consistency axioms.
        assert set(tso.axiom_names) <= set(mtm.axiom_names)

    def test_tlb_causality_is_diagnostic(self, mtm: MemoryModel) -> None:
        assert mtm.axiom("tlb_causality").diagnostic
        assert not mtm.axiom("invlpg").diagnostic

    def test_amd_bug_variant_drops_invlpg(self) -> None:
        assert "invlpg" not in x86t_amd_bug().axiom_names

    def test_formulas_compile(self, mtm: MemoryModel) -> None:
        formula = mtm.formula()
        assert formula is not None


class TestPaperFigureVerdicts:
    def test_fig2b_permitted(self, mtm: MemoryModel) -> None:
        # Fig 2b caption: "the outcome remains permitted".
        assert mtm.permits(fig2b_sb_elt().execution)

    def test_fig2c_forbidden_by_coherence(self, mtm: MemoryModel) -> None:
        # §II-B1: the aliasing remap yields "an illegal coherence violation"
        verdict = mtm.check(fig2c_sb_aliased().execution)
        assert verdict.forbidden
        assert "sc_per_loc" in verdict.violated

    def test_fig3_and_fig5_singletons_permitted(self, mtm: MemoryModel) -> None:
        for example in (fig5a_shared_walk(), fig5b_invlpg_forces_rewalk()):
            assert mtm.permits(example.execution), example.name

    def test_fig4b_permitted(self, mtm: MemoryModel) -> None:
        assert mtm.permits(fig4b_remap_chain().execution)

    def test_fig6d_permitted(self, mtm: MemoryModel) -> None:
        # §III-D: a "possible candidate execution" (legal under x86t_elt).
        assert mtm.permits(fig6d_remap_disambiguation().execution)

    def test_fig8_forbidden_via_causality(self, mtm: MemoryModel) -> None:
        # Fig 8 caption: violates x86-TSO axioms (mp cycle).
        verdict = mtm.check(fig8_non_minimal_mp().execution)
        assert verdict.forbidden
        assert "causality" in verdict.violated

    def test_fig10a_violates_sc_per_loc_and_invlpg(self, mtm: MemoryModel) -> None:
        # §VI-C: "The outcome shown violates both sc_per_loc and invlpg".
        verdict = mtm.check(fig10a_ptwalk2().execution)
        assert verdict.forbidden
        assert "sc_per_loc" in verdict.violated
        assert "invlpg" in verdict.violated

    def test_fig10b_permitted(self, mtm: MemoryModel) -> None:
        # Fig 10b caption: "the permitted dirtybit3 ELT".
        assert mtm.permits(fig10b_dirtybit3().execution)

    def test_fig11_violates_only_invlpg(self, mtm: MemoryModel) -> None:
        # §VI-C: forbidden via a cycle in remap + fr_va + ^po.
        verdict = mtm.check(fig11_stale_mapping_after_ipi().execution)
        assert verdict.violated == ("invlpg",)

    def test_fig11_exposes_amd_invlpg_bug(self) -> None:
        # The buggy variant (INVLPG does not invalidate) permits the stale
        # read -- Fig 11's ELT distinguishes correct x86 from the erratum.
        example = fig11_stale_mapping_after_ipi()
        assert x86t_elt().forbids(example.execution)
        assert x86t_amd_bug().permits(example.execution)


class TestClassicMcmVerdicts:
    @pytest.mark.parametrize("name", sorted(ALL_CLASSICS))
    def test_tso_verdicts(self, name: str, tso: MemoryModel) -> None:
        example = ALL_CLASSICS[name]()
        assert tso.permits(example.execution) == TSO_VERDICTS[name], name

    @pytest.mark.parametrize("name", sorted(ALL_CLASSICS))
    def test_sc_verdicts(self, name: str) -> None:
        example = ALL_CLASSICS[name]()
        sc = sequential_consistency()
        assert sc.permits(example.execution) == SC_VERDICTS[name], name

    def test_sc_is_stronger_than_tso_here(self, tso: MemoryModel) -> None:
        sc = sequential_consistency()
        for name, make in ALL_CLASSICS.items():
            execution = make().execution
            if sc.permits(execution):
                assert tso.permits(execution), name


class TestSymbolicAgreement:
    """The SAT-compiled predicate must agree with concrete evaluation."""

    @pytest.mark.parametrize(
        "make",
        [
            fig2b_sb_elt,
            fig2c_sb_aliased,
            fig10a_ptwalk2,
            fig10b_dirtybit3,
            fig11_stale_mapping_after_ipi,
        ],
    )
    def test_figures_agree(self, make, mtm: MemoryModel) -> None:
        execution = make().execution
        assert mtm.check_symbolic(execution) == mtm.permits(execution)

    @pytest.mark.parametrize("name", ["sb", "mp", "co_rr", "rmw_intervene"])
    def test_classics_agree(self, name: str, tso: MemoryModel) -> None:
        execution = ALL_CLASSICS[name]().execution
        assert tso.check_symbolic(execution) == tso.permits(execution)


class TestVerdictApi:
    def test_verdict_str(self, mtm: MemoryModel) -> None:
        verdict = mtm.check(fig11_stale_mapping_after_ipi().execution)
        assert "forbidden" in str(verdict)
        assert "invlpg" in str(verdict)

    def test_extended_and_without(self, tso: MemoryModel) -> None:
        from repro.models import INVLPG

        bigger = tso.extended("tso_plus", [INVLPG])
        assert "invlpg" in bigger.axiom_names
        smaller = bigger.without("tso_again", ["invlpg"])
        assert smaller.axiom_names == tso.axiom_names

    def test_without_unknown_axiom_raises(self, tso: MemoryModel) -> None:
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError):
            tso.without("bad", ["nonexistent"])

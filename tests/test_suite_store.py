"""Tests for the persistent suite store and resumable runs/sweeps."""

from __future__ import annotations

from dataclasses import replace

from repro.models import x86t_elt
from repro.orchestrate import (
    ShardSpec,
    ShardTask,
    SuiteStore,
    entry_key,
    plan_shards,
    run_shard,
    run_sharded,
    run_sweep_sharded,
)
from repro.orchestrate.store import KIND_SHARD, KIND_SUITE
from repro.synth import SynthesisConfig, synthesize


def config_for(axiom: str, bound: int = 4) -> SynthesisConfig:
    return SynthesisConfig(bound=bound, model=x86t_elt(), target_axiom=axiom)


class TestEntryKeys:
    def test_key_is_stable(self) -> None:
        assert entry_key(config_for("invlpg"), KIND_SUITE) == entry_key(
            config_for("invlpg"), KIND_SUITE
        )

    def test_key_separates_configs_kinds_and_shards(self) -> None:
        base = config_for("invlpg")
        keys = {
            entry_key(base, KIND_SUITE),
            entry_key(replace(base, bound=5), KIND_SUITE),
            entry_key(config_for("sc_per_loc"), KIND_SUITE),
            entry_key(replace(base, dirty_bit_as_rmw=True), KIND_SUITE),
            entry_key(base, KIND_SHARD, ShardSpec(0, 2)),
            entry_key(base, KIND_SHARD, ShardSpec(1, 2)),
        }
        assert len(keys) == 6


class TestStorePrimitives:
    def test_roundtrip_and_counters(self, tmp_path) -> None:
        store = SuiteStore(tmp_path)
        assert store.get("absent" * 5) is None
        assert store.counters.misses == 1
        store.put("somekey", {"payload": 1}, {"kind": "test"})
        assert store.counters.stores == 1
        assert store.get("somekey") == {"payload": 1}
        assert store.counters.hits == 1

    def test_corrupt_payload_is_quarantined_not_a_plain_miss(
        self, tmp_path
    ) -> None:
        store = SuiteStore(tmp_path)
        store.put("somekey", [1, 2], {"kind": "test"})
        (store.entries_dir / "somekey.pkl").write_bytes(b"not a pickle")
        assert store.get("somekey") is None
        # Damage counts under `corrupt` (distinct from `misses`: a true
        # absence) and the entry is moved aside so a rewrite heals it.
        assert store.counters.misses == 0
        assert store.counters.corrupt == 1
        assert not (store.entries_dir / "somekey.pkl").exists()
        assert (store.quarantine_dir / "somekey.pkl").exists()
        assert store.get("somekey") is None  # now a true absence
        assert store.counters.misses == 1

    def test_timed_out_results_are_never_cached(self, tmp_path) -> None:
        store = SuiteStore(tmp_path)
        config = replace(config_for("sc_per_loc", bound=6), time_budget_s=0.0)
        orchestrated = run_sharded(config, jobs=1, store=store)
        assert orchestrated.result.stats.timed_out
        assert store.counters.stores == 0
        # And a later budget-free run is not poisoned by the partial one.
        full = run_sharded(config_for("sc_per_loc", bound=6), jobs=1, store=store)
        assert not full.result.stats.timed_out
        serial = synthesize(config_for("sc_per_loc", bound=6))
        assert full.result.keys() == serial.keys()


class TestResumableRuns:
    def test_rerun_hits_suite_cache(self, tmp_path) -> None:
        store = SuiteStore(tmp_path)
        first = run_sharded(config_for("invlpg"), jobs=1, store=store)
        assert not first.suite_cache_hit
        second = run_sharded(config_for("invlpg"), jobs=1, store=store)
        assert second.suite_cache_hit
        assert second.result.keys() == first.result.keys()
        assert store.counters.hits >= 1

    def test_interrupted_run_resumes_from_completed_shards(self, tmp_path) -> None:
        """Simulate an interruption: one of three shards finished before
        the crash; the rerun recomputes only the other two."""
        store = SuiteStore(tmp_path)
        config = config_for("sc_per_loc")
        specs = plan_shards(1, shard_count=3)
        done = run_shard(ShardTask(config, specs[0]))
        store.save_shard(config, specs[0], done)

        resumed = run_sharded(config, jobs=1, shard_count=3, store=store)
        assert resumed.shard_cache_hits == 1
        assert resumed.shard_cache_misses == 2
        serial = synthesize(config_for("sc_per_loc"))
        assert [e.key for e in resumed.result.elts] == [
            e.key for e in serial.elts
        ]


class TestResumableSweeps:
    def test_resumed_sweep_skips_finished_points(self, tmp_path) -> None:
        store = SuiteStore(tmp_path)
        base = SynthesisConfig(bound=5, model=x86t_elt())

        # "Interrupted" sweep: only bound 4 completed before the cut.
        partial, partial_records = run_sweep_sharded(
            base, axioms=["invlpg"], min_bound=4, max_bound=4, store=store
        )
        assert [r.suite_cache_hit for r in partial_records] == [False]
        stores_before = store.counters.stores
        hits_before = store.counters.hits

        # Resume: rerun over the full range with the same store.
        resumed, records = run_sweep_sharded(
            base, axioms=["invlpg"], min_bound=4, max_bound=5, store=store
        )
        assert [r.suite_cache_hit for r in records] == [True, False]
        assert store.counters.hits > hits_before
        assert [point.bound for point in resumed.points] == [4, 5]
        assert (
            resumed.points[0].result.keys()
            == partial.points[0].result.keys()
        )
        # Finished point added no new entries; only bound 5 was stored.
        assert store.counters.stores > stores_before

        # A third, fully-resumed run recomputes nothing at all.
        final_stores = store.counters.stores
        again, again_records = run_sweep_sharded(
            base, axioms=["invlpg"], min_bound=4, max_bound=5, store=store
        )
        assert [r.suite_cache_hit for r in again_records] == [True, True]
        assert store.counters.stores == final_stores
        assert sum(
            r.shard_cache_misses for r in again_records
        ) == 0

"""The paper-figure oracle hub: every claim the paper makes about a
specific figure, asserted in one place.

(Verdict-level checks also appear in test_models.py; this module goes
deeper — per-figure edge inventories and the cycles the paper's prose
describes.)
"""

from __future__ import annotations

import pytest

from repro.litmus import ALL_FIGURES
from repro.litmus.figures import (
    fig2b_sb_elt,
    fig2c_sb_aliased,
    fig6d_remap_disambiguation,
    fig10a_ptwalk2,
    fig11_stale_mapping_after_ipi,
)
from repro.models import x86t_elt
from repro.mtm import names
from repro.relational import TupleSet


def closure_has_cycle(*edge_sets: TupleSet) -> bool:
    union = edge_sets[0]
    for edges in edge_sets[1:]:
        union = union + edges
    return not union.is_acyclic()


class TestFig2:
    """sb as an ELT: permitted without aliasing, forbidden with it."""

    def test_fig2b_every_access_translated(self) -> None:
        ex = fig2b_sb_elt()
        rf_ptw = ex.execution.relation(names.RF_PTW)
        users = {user for _walk, user in rf_ptw}
        expected = {ex.eid(k) for k in ("W0", "R1", "W2", "R3")}
        assert users == expected

    def test_fig2b_dirty_bits_write_pte_locations(self) -> None:
        ex = fig2b_sb_elt()
        x = ex.execution
        assert x.locations[ex.eid("Wdb0")] == ("pte", "x")
        assert x.locations[ex.eid("Wdb2")] == ("pte", "y")

    def test_fig2c_aliasing_creates_same_pa_com(self) -> None:
        # §II-B1: after the remap, x and y alias PA a, so com edges relate
        # accesses with different effective VAs.
        ex = fig2c_sb_aliased()
        x = ex.execution
        sloc = x.relation(names.SLOC)
        assert (ex.eid("W0"), ex.eid("R2")) in sloc  # W x vs R y — same PA!
        assert (ex.eid("W0"), ex.eid("W5")) in sloc

    def test_fig2c_coherence_cycle(self) -> None:
        # The forbidden outcome is a coherence (sc_per_loc) cycle.
        ex = fig2c_sb_aliased()
        x = ex.execution
        assert closure_has_cycle(
            x.relation(names.RF),
            x.relation(names.CO),
            x.relation(names.FR),
            x.relation(names.PO_LOC),
        )


class TestFig6:
    """The remap disambiguates an otherwise-ambiguous rf (§III-D)."""

    def test_r6_reads_w3_not_w4(self) -> None:
        ex = fig6d_remap_disambiguation()
        rf = ex.execution.relation(names.RF)
        assert (ex.eid("W3"), ex.eid("R6")) in rf
        assert (ex.eid("W4"), ex.eid("R6")) not in rf

    def test_w4_accesses_a_different_pa(self) -> None:
        ex = fig6d_remap_disambiguation()
        x = ex.execution
        assert x.pa_of[ex.eid("W4")] != x.pa_of[ex.eid("R6")]

    def test_all_four_rf_pa_and_fr_va_edges(self) -> None:
        # "there are rf_pa edges relating each to WPTE1. Similarly, R0 and
        # W4 read from the initial address mapping so there are fr_va edges"
        ex = fig6d_remap_disambiguation()
        x = ex.execution
        rf_pa = x.relation(names.RF_PA)
        fr_va = x.relation(names.FR_VA)
        assert (ex.eid("WPTE1"), ex.eid("W3")) in rf_pa
        assert (ex.eid("WPTE1"), ex.eid("R6")) in rf_pa
        assert (ex.eid("R0"), ex.eid("WPTE1")) in fr_va
        assert (ex.eid("W4"), ex.eid("WPTE1")) in fr_va

    def test_remap_fan_out_to_both_cores(self) -> None:
        ex = fig6d_remap_disambiguation()
        remap = ex.execution.relation(names.REMAP)
        targets = {inv for _pte, inv in remap}
        assert ex.eid("INVLPG2") in targets
        assert ex.eid("INVLPG5") in targets


class TestFig10a:
    """ptwalk2: the paper's category-1 poster child."""

    def test_violates_exactly_the_stated_axioms(self) -> None:
        verdict = x86t_elt().check(fig10a_ptwalk2().execution)
        assert set(verdict.violated) == {"sc_per_loc", "invlpg"}

    def test_sc_per_loc_cycle_goes_through_the_ghost_slot(self) -> None:
        # The coherence cycle needs po_loc(WPTE0 -> Rptw2): ghosts occupy
        # their parent's program slot (DESIGN.md decision 2).
        ex = fig10a_ptwalk2()
        x = ex.execution
        assert (ex.eid("WPTE0"), ex.eid("Rptw2")) in x.relation(names.PO_LOC)
        assert (ex.eid("Rptw2"), ex.eid("WPTE0")) in x.relation(names.FR)

    def test_invlpg_cycle(self) -> None:
        ex = fig10a_ptwalk2()
        x = ex.execution
        assert closure_has_cycle(
            x.relation(names.FR_VA),
            x.relation(names.PO),
            x.relation(names.REMAP),
        )


class TestFig11:
    def test_cycle_uses_the_remote_invlpg(self) -> None:
        # remap(WPTE0 -> INVLPG2) + po(INVLPG2 -> R3) + fr_va(R3 -> WPTE0).
        ex = fig11_stale_mapping_after_ipi()
        x = ex.execution
        assert (ex.eid("WPTE0"), ex.eid("INVLPG2")) in x.relation(names.REMAP)
        assert (ex.eid("INVLPG2"), ex.eid("R3")) in x.relation(names.PO)
        assert (ex.eid("R3"), ex.eid("WPTE0")) in x.relation(names.FR_VA)

    def test_without_the_ipi_ordering_no_violation(self) -> None:
        # Move the read *before* the INVLPG in po and the same stale read
        # becomes permitted — position of the IPI is what matters.
        from repro.mtm import Execution, ProgramBuilder

        b = ProgramBuilder()
        b.map("x", "pa_a")
        c0, c1 = b.thread(), b.thread()
        wpte0 = b_thread_read = None
        wpte0 = c0.pte_write("x", "pa_b")
        c1.read("x")  # reads the (still-current) initial mapping
        c1.invlpg_for(wpte0)
        execution = Execution(b.build())
        assert x86t_elt().permits(execution)


class TestAllFiguresWellFormed:
    @pytest.mark.parametrize("name", sorted(ALL_FIGURES))
    def test_constructible_and_exportable(self, name: str) -> None:
        example = ALL_FIGURES[name]()
        instance = example.execution.to_instance()
        assert set(instance.atoms) == set(example.execution.program.eids)

    @pytest.mark.parametrize("name", sorted(ALL_FIGURES))
    def test_com_relates_same_location_events(self, name: str) -> None:
        x = ALL_FIGURES[name]().execution
        sloc = x.relation(names.SLOC)
        for a, b in x.relation(names.COM):
            assert (a, b) in sloc, (name, a, b)

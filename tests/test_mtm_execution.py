"""Unit tests for candidate executions: witness validation and derived
relations, anchored on the paper's figures."""

from __future__ import annotations

import pytest

from repro.errors import WellFormednessError
from repro.litmus.figures import (
    fig2b_sb_elt,
    fig2c_sb_aliased,
    fig4b_remap_chain,
    fig5a_shared_walk,
    fig5b_invlpg_forces_rewalk,
    fig6d_remap_disambiguation,
    fig10a_ptwalk2,
    fig10b_dirtybit3,
    fig11_stale_mapping_after_ipi,
)
from repro.mtm import Execution, ProgramBuilder, names


class TestRfPtwDerivation:
    def test_shared_walk_sources_both_reads(self) -> None:
        ex = fig5a_shared_walk()
        rf_ptw = ex.execution.relation(names.RF_PTW)
        assert (ex.eid("Rptw0"), ex.eid("R0")) in rf_ptw
        assert (ex.eid("Rptw0"), ex.eid("R1")) in rf_ptw
        ptw_source = ex.execution.relation(names.PTW_SOURCE)
        assert ptw_source.tuples == {(ex.eid("R0"), ex.eid("R1"))}

    def test_invlpg_forces_new_walk(self) -> None:
        ex = fig5b_invlpg_forces_rewalk()
        rf_ptw = ex.execution.relation(names.RF_PTW)
        assert (ex.eid("Rptw0"), ex.eid("R0")) in rf_ptw
        assert (ex.eid("Rptw2"), ex.eid("R2")) in rf_ptw
        assert (ex.eid("Rptw0"), ex.eid("R2")) not in rf_ptw
        # No sharing -> no ptw_source edges.
        assert ex.execution.relation(names.PTW_SOURCE).is_empty()

    def test_access_with_no_tlb_entry_rejected(self) -> None:
        # Hand-build: read after INVLPG without a re-walk.
        from repro.mtm import Event, EventKind, Program

        events = {
            "r0": Event("r0", EventKind.READ, 0, va="x"),
            "pw0": Event("pw0", EventKind.PT_WALK, 0, va="x"),
            "i1": Event("i1", EventKind.INVLPG, 0, va="x"),
            "r2": Event("r2", EventKind.READ, 0, va="x"),
        }
        program = Program(
            events=events,
            threads=(("r0", "i1", "r2"),),
            ghosts={"r0": ("pw0",)},
            initial_map={"x": "pa_a"},
        )
        with pytest.raises(WellFormednessError, match="no TLB entry"):
            Execution(program)


class TestValueFlow:
    def test_initial_mapping_used_without_rf(self) -> None:
        ex = fig2b_sb_elt()
        pa = ex.execution.pa_of
        assert pa[ex.eid("W0")] == "pa_a"
        assert pa[ex.eid("R1")] == "pa_b"

    def test_remap_changes_effective_pa(self) -> None:
        ex = fig2c_sb_aliased()
        pa = ex.execution.pa_of
        assert pa[ex.eid("R2")] == "pa_a"  # y remapped to pa_a
        assert pa[ex.eid("W5")] == "pa_a"
        assert pa[ex.eid("W0")] == "pa_a"

    def test_stale_walk_keeps_old_pa(self) -> None:
        ex = fig10a_ptwalk2()
        assert ex.execution.pa_of[ex.eid("R2")] == "pa_a"

    def test_fresh_walk_gets_new_pa(self) -> None:
        ex = fig10b_dirtybit3()
        assert ex.execution.pa_of[ex.eid("R2")] == "pa_b"
        assert ex.execution.pa_of[ex.eid("W3")] == "pa_b"

    def test_dirty_bit_forwards_parent_mapping(self) -> None:
        # A walk reading from a Wdb inherits the Wdb's parent's mapping.
        b = ProgramBuilder()
        b.map("x", "pa_a")
        c0 = b.thread()
        w0 = c0.write("x")
        r1 = c0.read("x")  # capacity eviction: new walk
        program = b.build()
        wdb0 = b.dirty_of(w0)
        execution = Execution(program, rf=[(wdb0.eid, b.walk_of(r1).eid)])
        assert execution.pa_of[r1.eid] == "pa_a"
        # Dirty-bit source is not a PTE write, so no rf_pa edge.
        assert execution.relation(names.RF_PA).is_empty()

    def test_circular_value_flow_rejected(self) -> None:
        b = ProgramBuilder()
        b.map("x", "pa_a")
        c0 = b.thread()
        w0 = c0.write("x")
        program = b.build()
        wdb0, walk0 = b.dirty_of(w0), b.walk_of(w0)
        with pytest.raises(WellFormednessError, match="circular"):
            Execution(program, rf=[(wdb0.eid, walk0.eid)])


class TestWitnessValidation:
    def test_rf_across_locations_rejected(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        w0 = c0.write("x")
        r1 = c0.read("y")
        program = b.build()
        with pytest.raises(WellFormednessError, match="different locations"):
            Execution(program, rf=[(w0.eid, r1.eid)])

    def test_two_rf_sources_rejected(self) -> None:
        b = ProgramBuilder()
        c0, c1 = b.thread(), b.thread()
        w0 = c0.write("x")
        w1 = c1.write("x")
        r2 = c1.read("x", walk=b.walk_of(w1))
        program = b.build()
        wdb0, wdb1 = b.dirty_of(w0), b.dirty_of(w1)
        with pytest.raises(WellFormednessError, match="two rf sources"):
            Execution(
                program,
                rf=[(w0.eid, r2.eid), (w1.eid, r2.eid)],
                co=[(w0.eid, w1.eid), (wdb0.eid, wdb1.eid)],
            )

    def test_co_must_be_total(self) -> None:
        b = ProgramBuilder()
        c0, c1 = b.thread(), b.thread()
        c0.write("x")
        c1.write("x")
        program = b.build()
        with pytest.raises(WellFormednessError, match="not total"):
            Execution(program)

    def test_co_cycle_rejected(self) -> None:
        b = ProgramBuilder()
        c0, c1 = b.thread(), b.thread()
        w0 = c0.write("x")
        w1 = c1.write("x")
        program = b.build()
        with pytest.raises(WellFormednessError, match="cycle"):
            Execution(program, co=[(w0.eid, w1.eid), (w1.eid, w0.eid)])

    def test_co_across_locations_rejected(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        w0 = c0.write("x")
        w1 = c0.write("y")
        program = b.build()
        with pytest.raises(WellFormednessError, match="same-location"):
            Execution(program, co=[(w0.eid, w1.eid)])

    def test_aliased_writes_need_co(self) -> None:
        # After remapping y -> pa_a, writes to x and y hit the same PA and
        # must be coherence-ordered.
        ex = fig2c_sb_aliased()  # builds fine because co is provided
        co = ex.execution.relation(names.CO)
        assert (ex.eid("W0"), ex.eid("W5")) in co

    def test_walk_rf_from_wrong_pte_rejected(self) -> None:
        b = ProgramBuilder()
        b.map("x", "pa_a").map("y", "pa_b")
        c0 = b.thread()
        wpte = c0.pte_write("y", "pa_c")
        r1 = c0.read("x")
        program = b.build()
        with pytest.raises(WellFormednessError, match="different PTE locations"):
            Execution(program, rf=[(wpte.eid, b.walk_of(r1).eid)])


class TestDerivedRelations:
    def test_fig2b_rf_ptw_edges(self) -> None:
        ex = fig2b_sb_elt()
        rf_ptw = ex.execution.relation(names.RF_PTW)
        for user, walk in [
            ("W0", "Rptw0"),
            ("R1", "Rptw1"),
            ("W2", "Rptw2"),
            ("R3", "Rptw3"),
        ]:
            assert (ex.eid(walk), ex.eid(user)) in rf_ptw

    def test_fig2c_rf_pa(self) -> None:
        ex = fig2c_sb_aliased()
        rf_pa = ex.execution.relation(names.RF_PA)
        assert (ex.eid("WPTE3"), ex.eid("R2")) in rf_pa
        assert (ex.eid("WPTE3"), ex.eid("W5")) in rf_pa

    def test_fig4b_pa_edges(self) -> None:
        ex = fig4b_remap_chain()
        x = ex.execution
        assert (ex.eid("WPTE2"), ex.eid("R4")) in x.relation(names.RF_PA)
        assert (ex.eid("WPTE5"), ex.eid("R7")) in x.relation(names.RF_PA)
        assert (ex.eid("WPTE2"), ex.eid("WPTE5")) in x.relation(names.CO_PA)
        assert (ex.eid("R4"), ex.eid("WPTE5")) in x.relation(names.FR_PA)
        assert (ex.eid("R1"), ex.eid("WPTE2")) in x.relation(names.FR_VA)
        assert (ex.eid("R0"), ex.eid("WPTE5")) in x.relation(names.FR_VA)

    def test_fig6d_disambiguation(self) -> None:
        ex = fig6d_remap_disambiguation()
        x = ex.execution
        assert (ex.eid("W3"), ex.eid("R6")) in x.relation(names.RF)
        assert x.pa_of[ex.eid("W4")] == "pa_a"
        assert x.pa_of[ex.eid("R6")] == "pa_b"
        assert (ex.eid("R0"), ex.eid("WPTE1")) in x.relation(names.FR_VA)
        assert (ex.eid("W4"), ex.eid("WPTE1")) in x.relation(names.FR_VA)
        assert (ex.eid("R0"), ex.eid("W4")) in x.relation(names.FR)

    def test_fig10a_fr_and_fr_va(self) -> None:
        ex = fig10a_ptwalk2()
        x = ex.execution
        assert (ex.eid("Rptw2"), ex.eid("WPTE0")) in x.relation(names.FR)
        assert (ex.eid("R2"), ex.eid("WPTE0")) in x.relation(names.FR_VA)
        # po_loc puts the stale walk after the PTE write (ghosts inherit
        # their parent's slot).
        assert (ex.eid("WPTE0"), ex.eid("Rptw2")) in x.relation(names.PO_LOC)

    def test_fig11_invlpg_cycle_edges(self) -> None:
        ex = fig11_stale_mapping_after_ipi()
        x = ex.execution
        assert (ex.eid("WPTE0"), ex.eid("INVLPG2")) in x.relation(names.REMAP)
        assert (ex.eid("INVLPG2"), ex.eid("R3")) in x.relation(names.PO)
        assert (ex.eid("R3"), ex.eid("WPTE0")) in x.relation(names.FR_VA)

    def test_rfe_is_cross_core_rf(self) -> None:
        ex = fig2b_sb_elt()
        rfe = ex.execution.relation(names.RFE)
        assert (ex.eid("W2"), ex.eid("R1")) in rfe
        assert (ex.eid("W0"), ex.eid("R3")) in rfe

    def test_com_is_union(self) -> None:
        ex = fig2c_sb_aliased()
        x = ex.execution
        com = x.relation(names.COM)
        union = x.relation(names.RF) + x.relation(names.CO) + x.relation(names.FR)
        assert com == union

    def test_to_instance_roundtrip(self) -> None:
        ex = fig2b_sb_elt()
        instance = ex.execution.to_instance()
        assert instance.relation(names.RF) == ex.execution.relation(names.RF)
        assert set(instance.atoms) == set(ex.execution.program.eids)

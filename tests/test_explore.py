"""Tests for program exploration (outcome enumeration) and for
fence-enabled synthesis."""

from __future__ import annotations

from repro.litmus.figures import fig10a_ptwalk2, fig11_stale_mapping_after_ipi
from repro.models import x86t_elt, x86tso
from repro.mtm import EventKind, ProgramBuilder
from repro.synth import SynthesisConfig, explore_program, synthesize


class TestExploreProgram:
    def test_ptwalk2_outcomes(self) -> None:
        program = fig10a_ptwalk2().execution.program
        exploration = explore_program(program, x86t_elt())
        assert len(exploration.outcomes) == 2
        assert len(exploration.permitted) == 1
        assert len(exploration.forbidden) == 1
        assert exploration.can_violate

    def test_histogram(self) -> None:
        program = fig10a_ptwalk2().execution.program
        exploration = explore_program(program, x86t_elt())
        histogram = exploration.violated_axiom_histogram()
        assert histogram == {"sc_per_loc": 1, "invlpg": 1}

    def test_summary_text(self) -> None:
        program = fig11_stale_mapping_after_ipi().execution.program
        text = explore_program(program, x86t_elt()).summary()
        assert "permitted: 1" in text
        assert "forbidden: 1" in text
        assert "violating invlpg: 1" in text

    def test_limit_truncates(self) -> None:
        b = ProgramBuilder()
        c0, c1 = b.thread(), b.thread()
        c0.write("x")
        c1.write("x")
        c1.read("x")
        # Provide required co by exploring (the enumerator supplies co).
        program = b.build()
        exploration = explore_program(program, x86t_elt(), limit=1)
        assert exploration.truncated
        assert len(exploration.outcomes) == 1

    def test_read_only_program_cannot_violate(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        c0.read("x")
        exploration = explore_program(b.build(), x86t_elt())
        assert not exploration.can_violate


class TestFenceSynthesisQualification:
    """sb+mfence is the canonical fence test.  Running full fence-enabled
    synthesis to bound 6 takes minutes in pure Python (benchmarks cover
    sweeps), so these tests apply the engine's *filters* directly: the
    sb+mfence execution must qualify for the causality suite — forbidden
    via causality, minimal under every relaxation — while plain sb must
    not (its outcome is permitted)."""

    def test_sb_fence_qualifies_for_the_causality_suite(self) -> None:
        from repro.litmus.classics import sb_fence
        from repro.synth import is_minimal

        model = x86tso()
        execution = sb_fence().execution
        verdict = model.check(execution)
        assert "causality" in verdict.violated
        assert is_minimal(execution, model)
        # Fences are removable in isolation; removing either must legalize
        # the outcome (that is what makes the test minimal).
        from repro.synth import relaxation_becomes_permitted, removal_groups

        fence_groups = [
            g
            for g in removal_groups(execution.program)
            if any(
                execution.program.events[e].kind is EventKind.FENCE
                for e in g
            )
        ]
        assert len(fence_groups) == 2
        for group in fence_groups:
            assert relaxation_becomes_permitted(
                execution, model, removed=group
            )

    def test_plain_sb_does_not_qualify(self) -> None:
        from repro.litmus.classics import sb

        assert x86tso().permits(sb().execution)

    def test_fenceless_synthesis_contains_no_fences(self) -> None:
        result = synthesize(
            SynthesisConfig(
                bound=4,
                model=x86tso(),
                target_axiom="causality",
                mcm_mode=True,
                enable_fences=False,
                enable_rmw=False,
            )
        )
        for elt in result.elts:
            kinds = {e.kind for e in elt.program.events.values()}
            assert EventKind.FENCE not in kinds


class TestExploreCli:
    def test_cli_explore(self, tmp_path, capsys) -> None:
        from repro.cli import main

        path = tmp_path / "t.elt"
        path.write_text(
            "elt\nmap x pa_a\nthread 0\n  wpte x pa_b\n  ipi 0\n  r x miss\n"
        )
        assert main(["explore", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 candidate executions" in out
        assert "forbidden: 1" in out

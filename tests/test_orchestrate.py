"""Tests for the sharded parallel synthesis orchestrator.

The load-bearing property is *shard-count invariance*: any shard plan —
one worker or many, coarse or fine, with or without fan-out splitting —
must reproduce the serial engine's suite exactly (same canonical key
set, same ordering, same representative programs, byte-identical suite
file).  The merge layer's docstring argues why; these tests enforce it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.litmus import suite_from_synthesis
from repro.models import X86T_ELT_AXIOM_NAMES, x86t_elt
from repro.orchestrate import (
    ShardSpec,
    ShardTask,
    merge_shards,
    plan_shards,
    run_shard,
    run_sharded,
    shard_programs,
)
from repro.synth import (
    SynthesisConfig,
    enumerate_programs_with_order,
    synthesize,
    synthesize_sweep,
)


def config_for(axiom: str, bound: int = 4) -> SynthesisConfig:
    return SynthesisConfig(bound=bound, model=x86t_elt(), target_axiom=axiom)


def merge_plan_inline(config: SynthesisConfig, specs):
    """Run every shard in-process and merge (no worker pool)."""
    shards = [run_shard(ShardTask(config, spec)) for spec in specs]
    return merge_shards(config, shards)


class TestShardSpecs:
    def test_plan_serial_is_single_shard(self) -> None:
        assert plan_shards(1) == [ShardSpec(0, 1)]

    def test_plan_oversubscribes_parallel_jobs(self) -> None:
        specs = plan_shards(2)
        assert len(specs) == 8
        assert {spec.skeleton_index for spec in specs} == set(range(8))

    def test_plan_with_fanout_split(self) -> None:
        specs = plan_shards(1, shard_count=2, fanout_split=3)
        assert len(specs) == 6
        assert {(s.skeleton_index, s.fanout_index) for s in specs} == {
            (i, j) for i in range(2) for j in range(3)
        }

    def test_invalid_specs_rejected(self) -> None:
        with pytest.raises(SynthesisError):
            ShardSpec(2, 2)
        with pytest.raises(SynthesisError):
            ShardSpec(0, 0)
        with pytest.raises(SynthesisError):
            plan_shards(0)

    def test_shards_partition_the_program_stream(self) -> None:
        """Disjoint and jointly exhaustive, with identical order keys."""
        config = config_for("sc_per_loc")
        full = {
            order for order, _p in enumerate_programs_with_order(config)
        }
        specs = plan_shards(1, shard_count=3, fanout_split=2)
        seen: dict = {}
        for spec in specs:
            for order, _program in shard_programs(config, spec):
                assert order not in seen, (
                    f"order {order} in both {seen[order]} and {spec}"
                )
                seen[order] = spec
        assert set(seen) == full


class TestShardCountInvariance:
    """Satellite: ``orchestrate`` with jobs=1 and jobs=4 yields identical
    canonical ELT key sets and stable ordering."""

    @settings(max_examples=12, deadline=None)
    @given(
        axiom=st.sampled_from(sorted(X86T_ELT_AXIOM_NAMES)),
        shard_count=st.integers(min_value=1, max_value=5),
        fanout_split=st.integers(min_value=1, max_value=2),
    )
    def test_any_shard_plan_matches_serial(
        self, axiom: str, shard_count: int, fanout_split: int
    ) -> None:
        config = config_for(axiom)
        serial = synthesize(config)
        specs = plan_shards(1, shard_count=shard_count, fanout_split=fanout_split)
        merged, _report = merge_plan_inline(config, specs)
        assert [e.key for e in merged.elts] == [e.key for e in serial.elts]
        assert merged.keys() == serial.keys()
        # Representative programs and executions match too (not just keys).
        serial_text = suite_from_synthesis(serial).dumps()
        merged_text = suite_from_synthesis(merged).dumps()
        assert merged_text == serial_text

    def test_jobs1_and_jobs4_identical(self) -> None:
        config = config_for("sc_per_loc")
        one = run_sharded(config_for("sc_per_loc"), jobs=1)
        four = run_sharded(config_for("sc_per_loc"), jobs=4)
        assert [e.key for e in one.result.elts] == [
            e.key for e in four.result.elts
        ]
        serial = synthesize(config)
        assert (
            suite_from_synthesis(four.result).dumps()
            == suite_from_synthesis(serial).dumps()
        )

    def test_outcome_counts_survive_sharding(self) -> None:
        config = config_for("sc_per_loc", bound=5)
        serial = synthesize(config)
        merged, _ = merge_plan_inline(
            config, plan_shards(1, shard_count=4)
        )
        assert [e.outcome_count for e in merged.elts] == [
            e.outcome_count for e in serial.elts
        ]

    def test_merge_reports_cross_shard_duplicates(self) -> None:
        """Duplicating a shard's results must not duplicate ELTs."""
        config = config_for("invlpg")
        spec = plan_shards(1)[0]
        shard = run_shard(ShardTask(config, spec))
        merged, report = merge_shards(config, [shard, shard])
        assert merged.count == shard.stats.unique_programs
        assert report.cross_shard_duplicates == shard.stats.unique_programs


class TestTimeouts:
    def test_exhausted_budget_propagates_timed_out(self) -> None:
        config = SynthesisConfig(
            bound=6,
            model=x86t_elt(),
            target_axiom="sc_per_loc",
            time_budget_s=0.0,
        )
        orchestrated = run_sharded(config, jobs=1, shard_count=2)
        assert orchestrated.result.stats.timed_out

    def test_sweep_records_skipped_bounds(self) -> None:
        base = SynthesisConfig(bound=6, model=x86t_elt())
        sweep = synthesize_sweep(
            base,
            axioms=["sc_per_loc"],
            min_bound=4,
            max_bound=6,
            time_budget_per_run_s=0.0,
        )
        assert len(sweep.points) == 1
        assert sweep.points[0].result.stats.timed_out
        assert sweep.timed_out_points() == [("sc_per_loc", 4)]
        assert sweep.skipped == [("sc_per_loc", 5), ("sc_per_loc", 6)]

    def test_sweep_budget_falls_back_to_base_config(self) -> None:
        """A base config's budget must not be silently discarded."""
        base = SynthesisConfig(
            bound=5, model=x86t_elt(), time_budget_s=0.0
        )
        sweep = synthesize_sweep(
            base, axioms=["invlpg"], min_bound=4, max_bound=5
        )
        assert sweep.points[0].result.stats.timed_out
        assert sweep.skipped == [("invlpg", 5)]

"""Tests for canonicalization / deduplication (§IV-C)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mtm import Execution, ProgramBuilder
from repro.synth import (
    canonical_execution_key,
    canonical_program_key,
    is_canonical_thread_order,
)


def two_thread_program(first_va: str, second_va: str, swap_threads: bool):
    """W(first) | R(second) on separate cores, optionally built in swapped
    thread order — all four builds must canonicalize identically."""
    b = ProgramBuilder()
    if swap_threads:
        c1, c0 = b.thread(), b.thread()
    else:
        c0, c1 = b.thread(), b.thread()
    c0.write(first_va)
    c1.read(second_va)
    return b.build()


class TestProgramCanonicalization:
    def test_va_renaming_invariance(self) -> None:
        a = two_thread_program("x", "y", swap_threads=False)
        b = two_thread_program("p", "q", swap_threads=False)
        assert canonical_program_key(a) == canonical_program_key(b)

    def test_thread_permutation_invariance(self) -> None:
        a = two_thread_program("x", "y", swap_threads=False)
        b = two_thread_program("x", "y", swap_threads=True)
        assert canonical_program_key(a) == canonical_program_key(b)

    def test_different_structure_different_key(self) -> None:
        b1 = ProgramBuilder()
        c0 = b1.thread()
        c0.write("x")
        b2 = ProgramBuilder()
        c0 = b2.thread()
        c0.read("x")
        assert canonical_program_key(b1.build()) != canonical_program_key(b2.build())

    def test_miss_vs_hit_distinguished(self) -> None:
        # Same user instructions; second read hits vs re-walks (capacity
        # eviction) — distinct programs (§III-B2 explores both).
        b1 = ProgramBuilder()
        c0 = b1.thread()
        r0 = c0.read("x")
        c0.read("x", walk=b1.walk_of(r0))
        b2 = ProgramBuilder()
        c0 = b2.thread()
        c0.read("x")
        c0.read("x")  # fresh walk
        assert canonical_program_key(b1.build()) != canonical_program_key(b2.build())

    def test_alias_vs_fresh_target_distinguished(self) -> None:
        b1 = ProgramBuilder()
        b1.map("x", "pa_a").map("y", "pa_b")
        c0 = b1.thread()
        c0.read("y")
        c0.pte_write("x", "pa_b")  # alias to y's page
        b2 = ProgramBuilder()
        b2.map("x", "pa_a").map("y", "pa_b")
        c0 = b2.thread()
        c0.read("y")
        c0.pte_write("x", "pa_fresh")
        assert canonical_program_key(b1.build()) != canonical_program_key(b2.build())

    def test_exactly_one_thread_order_is_canonical(self) -> None:
        a = two_thread_program("x", "y", swap_threads=False)
        b = two_thread_program("x", "y", swap_threads=True)
        assert is_canonical_thread_order(a) != is_canonical_thread_order(b)

    def test_symmetric_program_is_canonical(self) -> None:
        b = ProgramBuilder(mcm_mode=True)
        c0, c1 = b.thread(), b.thread()
        c0.write("x")
        c1.write("x")
        assert is_canonical_thread_order(b.build())


class TestExecutionCanonicalization:
    def test_witness_distinguishes_executions(self) -> None:
        b = ProgramBuilder(mcm_mode=True)
        c0, c1 = b.thread(), b.thread()
        w0 = c0.write("x")
        r1 = c1.read("x")
        program = b.build()
        reads_init = Execution(program)
        reads_w0 = Execution(program, rf=[(w0.eid, r1.eid)])
        assert canonical_execution_key(reads_init) != canonical_execution_key(
            reads_w0
        )

    def test_execution_key_thread_invariant(self) -> None:
        def build(swapped: bool):
            b = ProgramBuilder(mcm_mode=True)
            if swapped:
                c1, c0 = b.thread(), b.thread()
            else:
                c0, c1 = b.thread(), b.thread()
            w0 = c0.write("x")
            r1 = c1.read("x")
            return Execution(b.build(), rf=[(w0.eid, r1.eid)])

        assert canonical_execution_key(build(False)) == canonical_execution_key(
            build(True)
        )


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["R", "W"]), st.sampled_from([0, 1])),
        min_size=1,
        max_size=3,
    ),
    rename=st.permutations(["x", "y"]),
)
@settings(max_examples=60, deadline=None)
def test_property_va_renaming_never_changes_key(ops, rename) -> None:
    def build(names: list[str]):
        b = ProgramBuilder(mcm_mode=True)
        c0 = b.thread()
        for op, va in ops:
            if op == "R":
                c0.read(names[va])
            else:
                c0.write(names[va])
        return b.build()

    original = build(["x", "y"])
    renamed = build(list(rename))
    assert canonical_program_key(original) == canonical_program_key(renamed)

"""Tests for the differential conformance engine.

The load-bearing properties:

* the paper's case study reproduces — x86t_elt vs x86t_amd_bug at bound
  5 synthesizes exactly the fig 11-style stale-read ELT, violating only
  ``invlpg``;
* determinism is *stronger* than synthesis: the diff suite's bytes are
  identical across shard plans, jobs settings, and witness backends;
* the all-pairs matrix honors the catalog's axiom-subset inclusions and
  pair-swap antisymmetry at every tested bound;
* the suite store makes diff runs resumable (cell- and shard-level
  cache hits, never caching timed-out work).
"""

from __future__ import annotations

import pytest

from repro.conformance import (
    ConformanceCell,
    DiffConfig,
    Refinement,
    axiom_subset,
    catalog_pairs,
    diff_entry_key,
    diff_models,
    expected_refinements,
    run_all_pairs,
    run_diff,
)
from repro.errors import SynthesisError
from repro.litmus import suite_from_diff
from repro.models import (
    catalog_models,
    sc_t,
    sequential_consistency,
    x86t_amd_bug,
    x86t_elt,
    x86tso,
)
from repro.orchestrate import KIND_DIFF_CELL, KIND_DIFF_SHARD, SuiteStore
from repro.synth import SynthesisConfig


def amd_diff(bound: int = 5, **overrides) -> DiffConfig:
    return DiffConfig(
        base=SynthesisConfig(bound=bound, model=x86t_elt(), **overrides),
        subject=x86t_amd_bug(),
    )


class TestAmdBugCaseStudy:
    def test_bound5_synthesizes_the_invlpg_discriminator(self) -> None:
        cell = diff_models(amd_diff())
        assert cell.count == 1
        (elt,) = cell.elts
        assert elt.violated_axioms == ("invlpg",)
        assert cell.verdict is Refinement.REFERENCE_STRONGER
        assert cell.stats.only_reference_forbids == 1
        assert cell.stats.only_subject_forbids == 0
        # The representative is genuinely discriminating.
        assert x86t_elt().forbids(elt.execution)
        assert x86t_amd_bug().permits(elt.execution)

    def test_bound4_is_not_yet_discriminating(self) -> None:
        cell = diff_models(amd_diff(bound=4))
        assert cell.verdict is Refinement.EQUIVALENT
        assert not cell.discriminating

    def test_counts_partition_the_candidate_space(self) -> None:
        cell = diff_models(amd_diff())
        assert (
            sum(cell.counts().values())
            == cell.stats.executions_enumerated
        )


class TestDeterminism:
    def test_shard_plans_reproduce_serial_bytes(self) -> None:
        serial = suite_from_diff(diff_models(amd_diff())).dumps()
        for shard_count in (2, 5):
            sharded = run_diff(amd_diff(), jobs=1, shard_count=shard_count)
            assert suite_from_diff(sharded.cell).dumps() == serial
            assert sharded.cell.counts() == diff_models(amd_diff()).counts()

    def test_witness_backends_reproduce_identical_bytes(self) -> None:
        explicit = diff_models(amd_diff())
        sat = diff_models(amd_diff(witness_backend="sat"))
        assert suite_from_diff(sat).dumps() == suite_from_diff(explicit).dumps()
        assert sat.counts() == explicit.counts()
        assert sat.reference_only_keys == explicit.reference_only_keys
        assert sat.subject_only_keys == explicit.subject_only_keys
        assert sat.stats.sat_decisions > 0

    def test_fanout_split_reproduces_serial_bytes(self) -> None:
        serial = suite_from_diff(diff_models(amd_diff())).dumps()
        sharded = run_diff(amd_diff(), jobs=1, shard_count=3, fanout_split=2)
        assert suite_from_diff(sharded.cell).dumps() == serial


class TestConfigValidation:
    def test_target_axiom_is_rejected(self) -> None:
        with pytest.raises(SynthesisError):
            DiffConfig(
                base=SynthesisConfig(
                    bound=4, model=x86t_elt(), target_axiom="invlpg"
                ),
                subject=x86t_amd_bug(),
            )

    def test_jobs_must_be_positive(self) -> None:
        with pytest.raises(SynthesisError):
            run_diff(amd_diff(), jobs=0)


class TestSuiteSerialization:
    def test_diff_suite_round_trips_with_pair_metadata(self, tmp_path) -> None:
        from repro.litmus import EltSuite

        cell = diff_models(amd_diff())
        path = tmp_path / "amd.elts"
        suite_from_diff(cell).save(path)
        loaded = EltSuite.load(path)
        assert len(loaded) == cell.count
        entry = loaded.get("diff_001")
        assert entry.meta["reference"] == "x86t_elt"
        assert entry.meta["subject"] == "x86t_amd_bug"
        assert entry.meta["violates"] == "invlpg"
        assert entry.meta["agreement"] == "only-reference-forbids"
        assert x86t_elt().forbids(entry.execution)
        assert x86t_amd_bug().permits(entry.execution)


class TestStore:
    def test_cell_level_resume(self, tmp_path) -> None:
        store = SuiteStore(tmp_path / "cache")
        first = run_diff(amd_diff(), store=store)
        assert not first.cell_cache_hit
        second = run_diff(amd_diff(), store=store)
        assert second.cell_cache_hit
        assert (
            suite_from_diff(second.cell).dumps()
            == suite_from_diff(first.cell).dumps()
        )

    def test_shard_level_resume(self, tmp_path) -> None:
        store = SuiteStore(tmp_path / "cache")
        first = run_diff(amd_diff(), jobs=1, shard_count=3, store=store)
        assert first.shard_cache_misses == 3
        # Drop the merged cell so the rerun must fall back to shards.
        cell_key = diff_entry_key(amd_diff(), KIND_DIFF_CELL)
        (store.entries_dir / f"{cell_key}.pkl").unlink()
        second = run_diff(amd_diff(), jobs=1, shard_count=3, store=store)
        assert second.shard_cache_hits == 3
        assert (
            suite_from_diff(second.cell).dumps()
            == suite_from_diff(first.cell).dumps()
        )

    def test_diff_keys_are_pair_specific(self) -> None:
        forward = diff_entry_key(amd_diff(), KIND_DIFF_CELL)
        backward = diff_entry_key(
            DiffConfig(
                base=SynthesisConfig(bound=5, model=x86t_amd_bug()),
                subject=x86t_elt(),
            ),
            KIND_DIFF_CELL,
        )
        assert forward != backward
        assert forward != diff_entry_key(amd_diff(), KIND_DIFF_SHARD)


class TestAllPairs:
    @pytest.fixture(scope="class")
    def bound4(self):
        models = catalog_models()
        matrix, records = run_all_pairs(
            SynthesisConfig(bound=4, model=x86t_elt()), models=models
        )
        return models, matrix, records

    def test_covers_every_ordered_pair(self, bound4) -> None:
        models, matrix, records = bound4
        assert len(matrix.pairs()) == len(models) * (len(models) - 1)
        assert len(records) == len(matrix.pairs())

    def test_inclusions_consistent_with_catalog(self, bound4) -> None:
        models, matrix, _ = bound4
        expected = expected_refinements(models)
        # The catalog's syntactic inclusions are present...
        assert ("x86t_elt", "x86tso") in expected
        assert ("x86t_elt", "x86t_amd_bug") in expected
        assert ("x86t_amd_bug", "x86tso") in expected
        assert ("sc_t", "sc") in expected
        # ...and none is violated by the synthesized matrix.
        assert matrix.inclusion_violations(models) == []

    def test_antisymmetry_holds(self, bound4) -> None:
        _, matrix, _ = bound4
        assert matrix.antisymmetry_violations() == []

    def test_sc_strength_is_visible_at_bound4(self, bound4) -> None:
        _, matrix, _ = bound4
        # SC over all memory events (user po only) forbids ghost-visible
        # reorderings the x86 models permit: every catalog entry is
        # strictly weaker than sc on the bound-4 space.
        assert (
            matrix.verdict("x86tso", "sc") is Refinement.REFERENCE_STRONGER
        )
        assert matrix.verdict("sc", "x86tso") is Refinement.SUBJECT_STRONGER
        assert matrix.cell("x86tso", "sc").count > 0

    def test_matrix_json_is_stable(self, bound4) -> None:
        _, matrix, _ = bound4
        payload = matrix.to_json()
        assert payload["schema"] == 1
        assert payload["kind"] == "conformance-matrix"
        assert payload["models"] == list(matrix.models)
        assert len(payload["pairs"]) == len(matrix.pairs())
        first = payload["pairs"][0]
        assert set(first) == {
            "schema",
            "kind",
            "reference",
            "subject",
            "bound",
            "verdict",
            "counts",
            "discriminating",
            "stats",
        }

    def test_all_pairs_store_resume(self, tmp_path, bound4) -> None:
        models, matrix, _ = bound4
        store = SuiteStore(tmp_path / "cache")
        base = SynthesisConfig(bound=4, model=x86t_elt())
        _, first_records = run_all_pairs(base, models=models, store=store)
        assert not any(r.cell_cache_hit for r in first_records)
        rerun, second_records = run_all_pairs(base, models=models, store=store)
        assert all(r.cell_cache_hit for r in second_records)
        for pair in matrix.pairs():
            assert rerun.cell(*pair).counts() == matrix.cell(*pair).counts()

    def test_pair_subset_run(self) -> None:
        models = catalog_models()
        pairs = [("x86t_elt", "x86t_amd_bug")]
        matrix, records = run_all_pairs(
            SynthesisConfig(bound=5, model=x86t_elt()),
            models=models,
            pairs=pairs,
        )
        assert matrix.pairs() == pairs
        assert matrix.cell("x86t_elt", "x86t_amd_bug").count == 1


class TestAxiomSubset:
    def test_subset_facts(self) -> None:
        assert axiom_subset(x86tso(), x86t_elt())
        assert axiom_subset(x86t_amd_bug(), x86t_elt())
        assert axiom_subset(sequential_consistency(), sc_t())
        assert not axiom_subset(x86t_elt(), x86tso())
        assert not axiom_subset(sequential_consistency(), x86tso())

    def test_catalog_pairs_order(self) -> None:
        models = catalog_models()
        pairs = catalog_pairs(models)
        assert len(pairs) == len(models) * (len(models) - 1)
        assert pairs[0][0] == list(models)[0]


class TestEmptyCell:
    def test_equivalent_cell_has_no_keys(self) -> None:
        cell = diff_models(
            DiffConfig(
                base=SynthesisConfig(bound=3, model=sequential_consistency()),
                subject=sequential_consistency(),
            )
        )
        assert cell.verdict is Refinement.EQUIVALENT
        assert cell.reference_only_keys == ()
        assert cell.subject_only_keys == ()
        assert isinstance(cell, ConformanceCell)

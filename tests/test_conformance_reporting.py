"""Tests for conformance reporting: the pair/matrix renderers and the
paper's x86t-vs-AMD-erratum case-study table."""

from __future__ import annotations

import pytest

from repro.conformance import run_all_pairs
from repro.models import catalog_models, x86t_elt
from repro.reporting import (
    amd_bug_case_study,
    render_amd_bug_report,
    render_conformance_cell,
    render_conformance_matrix,
    render_pair_cache_summary,
)
from repro.synth import SynthesisConfig


@pytest.fixture(scope="module")
def amd_cell():
    return amd_bug_case_study()


class TestAmdBugReport:
    def test_case_study_reproduces_the_paper_comparison(self, amd_cell) -> None:
        assert amd_cell.reference == "x86t_elt"
        assert amd_cell.subject == "x86t_amd_bug"
        assert amd_cell.count == 1

    def test_report_table(self, amd_cell) -> None:
        report = render_amd_bug_report(amd_cell)
        assert "AMD-erratum differencing case study" in report
        assert "forbidden by x86t_elt, observable on buggy hw | 1" in report
        assert "distinguishing ELTs (minimal, unique)" in report
        assert "ELT 1: violates invlpg" in report

    def test_cell_render(self, amd_cell) -> None:
        rendered = render_conformance_cell(amd_cell)
        assert "x86t_elt (reference) vs x86t_amd_bug (subject)" in rendered
        assert "only-reference-forbids" in rendered
        assert "verdict: reference-stronger" in rendered


class TestMatrixRender:
    @pytest.fixture(scope="class")
    def matrix_and_records(self):
        models = catalog_models()
        matrix, records = run_all_pairs(
            SynthesisConfig(bound=4, model=x86t_elt()), models=models
        )
        return models, matrix, records

    def test_grid_and_detail(self, matrix_and_records) -> None:
        models, matrix, _ = matrix_and_records
        rendered = render_conformance_matrix(matrix, models=models)
        assert "conformance matrix @ bound 4" in rendered
        assert "legend:" in rendered
        assert "(axiom subset)" in rendered
        # Diagonal markers: one "." per model row.
        grid_rows = [
            line for line in rendered.splitlines() if line.startswith(tuple(models))
        ]
        assert len(grid_rows) >= len(models)

    def test_cache_summary(self, matrix_and_records) -> None:
        _, _, records = matrix_and_records
        summary = render_pair_cache_summary(records)
        assert "all-pairs run (resume/cache summary)" in summary
        assert "computed" in summary

"""Incremental witness sessions: unit tests and differential fuzz.

Three layers, each checked against its fresh-path oracle:

* the CDCL solver's assumption-scoped ``iter_solutions`` (blocking
  clauses carry the activation tag and retract when it is retired);
* ``ProblemSession`` — constraint groups under activation literals vs
  the same groups hard-compiled by ``Problem.iter_instances(groups=…)``;
* ``WitnessSession`` / the process session cache — cached witness lists
  and model/axiom assumption queries vs fresh constrained
  ``WitnessProblem`` builds, plus the fused multi-pair diff pipeline vs
  per-pair runs, on Hypothesis-generated VM programs.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.models import CATALOG, x86t_amd_bug, x86t_elt
from repro.relational import Problem, TupleSet, acyclic, no, some, subset
from repro.sat import CdclSolver, Cnf
from repro.synth import SynthesisConfig, shared_session_cache
from repro.synth.sat_backend import (
    WitnessSession,
    WitnessSessionCache,
    enumerate_witnesses_sat,
    program_identity_key,
)

from .strategies import vm_programs


def witness_key(execution):
    return (
        frozenset(execution._rf),
        frozenset(execution.co),
        frozenset(execution.co_pa),
    )


# ----------------------------------------------------------------------
# Solver: assumption-scoped enumeration
# ----------------------------------------------------------------------
class TestAssumptionScopedAllSat:
    def _guarded_cnf(self):
        """x1 free, g1 -> x1, g2 -> ¬x1, one extra free var x2."""
        cnf = Cnf()
        x1, x2, g1, g2 = (cnf.new_var() for _ in range(4))
        cnf.add_clause([-g1, x1])
        cnf.add_clause([-g2, -x1])
        return cnf, x1, x2, g1, g2

    def test_enumeration_respects_assumptions(self) -> None:
        cnf, x1, x2, g1, g2 = self._guarded_cnf()
        solver = CdclSolver(cnf)
        tag = cnf.new_var()
        models = list(solver.iter_solutions(assumptions=[tag, g1, -g2]))
        assert len(models) == 2
        assert all(m[x1] for m in models)

    def test_blocking_clauses_retract_with_the_tag(self) -> None:
        cnf, x1, x2, g1, g2 = self._guarded_cnf()
        solver = CdclSolver(cnf)
        for selected in ([g1, -g2], [-g1, g2], [-g1, -g2], [g1, -g2]):
            tag = cnf.new_var()
            models = list(
                solver.iter_solutions(assumptions=[tag] + selected)
            )
            expected = 4 if selected == [-g1, -g2] else 2
            assert len(models) == expected, selected
            solver.add_clause([-tag])
        # The solver survives every enumeration and still answers solves.
        assert solver.solve([g1, g2]).satisfiable is False
        assert solver.solve([-g1, -g2]).satisfiable is True

    def test_unsat_under_assumptions_keeps_solver_usable(self) -> None:
        cnf, x1, x2, g1, g2 = self._guarded_cnf()
        solver = CdclSolver(cnf)
        tag = cnf.new_var()
        assert list(solver.iter_solutions(assumptions=[tag, g1, g2])) == []
        solver.add_clause([-tag])
        assert solver.solve([g1]).satisfiable is True


# ----------------------------------------------------------------------
# ProblemSession vs the hard-compiled fresh path
# ----------------------------------------------------------------------
def _order_problem():
    problem = Problem(["a", "b", "c"])
    r = problem.declare("r", 2)
    problem.constrain(acyclic(r))
    problem.constrain(subset(r.dot(r), r))
    problem.constrain(some(r), group="nonempty")
    problem.constrain(
        no(r & TupleSet.pairs([("a", "b")])), group="no_ab"
    )
    return problem


class TestProblemSession:
    @pytest.mark.parametrize(
        "selection",
        [(), ("nonempty",), ("no_ab",), ("nonempty", "no_ab")],
        ids=lambda s: "+".join(s) or "base",
    )
    def test_session_matches_fresh_oracle(self, selection) -> None:
        fresh = {
            frozenset(i.relation("r").tuples)
            for i in _order_problem().iter_instances(groups=selection)
        }
        session = _order_problem().session()
        # Interleave other selections first to dirty the solver state.
        session.solve(groups=["nonempty"])
        session.solve(groups=["no_ab"])
        via_session = {
            frozenset(i.relation("r").tuples)
            for i in session.iter_instances(groups=selection)
        }
        assert via_session == fresh

    def test_base_enumeration_is_bit_identical(self) -> None:
        fresh = [
            i.relation("r").tuples
            for i in _order_problem().iter_instances()
        ]
        session = _order_problem().session()
        via_session = [
            i.relation("r").tuples for i in session.iter_base_instances()
        ]
        assert via_session == fresh  # same instances, same ORDER

    def test_repeated_enumerations_converge(self) -> None:
        session = _order_problem().session()
        first = list(session.iter_instances(groups=["nonempty"]))
        second = list(session.iter_instances(groups=["nonempty"]))
        assert len(first) == len(second) == 18
        assert session.stats.incremental_solves == 2

    def test_dynamic_groups_and_conflicts(self) -> None:
        problem = _order_problem()
        assert problem.groups == ("nonempty", "no_ab")
        session = problem.session()
        r = __import__("repro.relational.ast", fromlist=["Rel"]).Rel("r", 2)
        session.add_group("empty", [no(r)])
        assert session.has_group("empty") and session.has_group("nonempty")
        assert not session.has_group("missing")
        instance = session.solve(groups=["empty"])
        assert instance is not None
        assert not instance.relation("r").tuples
        assert session.solve(groups=["empty", "nonempty"]) is None
        assert session.solve(groups=["nonempty"]) is not None

    def test_unknown_group_rejected(self) -> None:
        from repro.errors import RelationalError

        session = _order_problem().session()
        with pytest.raises(RelationalError):
            session.solve(groups=["missing"])
        with pytest.raises(RelationalError):
            list(_order_problem().iter_instances(groups=["missing"]))

    def test_bad_group_registrations_rejected(self) -> None:
        from repro.errors import RelationalError

        session = _order_problem().session()
        with pytest.raises(RelationalError):
            session.add_group("nonempty", [some(_order_problem()._bounds and __import__("repro.relational.ast", fromlist=["Rel"]).Rel("r", 2))])
        with pytest.raises(RelationalError):
            session.add_group("hollow", [])

    def test_limits_and_solver_stats(self) -> None:
        session = _order_problem().session()
        assert session.solver_stats is None
        assert list(session.iter_instances(groups=["nonempty"], limit=0)) == []
        assert len(list(session.iter_instances(groups=["nonempty"], limit=3))) == 3
        assert session.solver_stats is not None
        assert list(session.iter_base_instances(limit=0)) == []
        assert len(list(session.iter_base_instances(limit=2))) == 2


# ----------------------------------------------------------------------
# WitnessSession differential fuzz (Hypothesis vm_programs)
# ----------------------------------------------------------------------
MODEL = x86t_elt()
AMD = x86t_amd_bug()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(program=vm_programs(max_events=7))
def test_session_witness_stream_is_bit_identical(program) -> None:
    fresh = [witness_key(e) for e in enumerate_witnesses_sat(program)]
    session = WitnessSession(program)
    cached = [witness_key(e) for e in session.witnesses()]
    replay = [witness_key(e) for e in session.witnesses()]
    assert cached == fresh
    assert replay == fresh


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(program=vm_programs(max_events=6), data=st.data())
def test_session_queries_match_fresh_constrained_problems(
    program, data
) -> None:
    session = WitnessSession(program)
    axiom = data.draw(
        st.sampled_from(MODEL.axiom_names), label="violated_axiom"
    )
    fresh_violating = {
        witness_key(e)
        for e in enumerate_witnesses_sat(
            program, model=MODEL, violated_axiom=axiom
        )
    }
    assert session.has_witness(model=MODEL, violated_axiom=axiom) == bool(
        fresh_violating
    )
    assert {
        witness_key(e)
        for e in session.query_executions(model=MODEL, violated_axiom=axiom)
    } == fresh_violating

    fresh_permitted = {
        witness_key(e)
        for e in enumerate_witnesses_sat(program, model=MODEL)
    }
    assert {
        witness_key(e) for e in session.query_executions(model=MODEL)
    } == fresh_permitted

    # "forbidden by reference ∧ permitted by subject" vs concrete verdicts.
    discriminating = any(
        (not MODEL.permits(e)) and AMD.permits(e)
        for e in session.witnesses()
    )
    assert session.has_discriminating_witness(MODEL, AMD) == discriminating
    # Queries left the cached full enumeration untouched.
    assert [witness_key(e) for e in session.witnesses()] == [
        witness_key(e) for e in enumerate_witnesses_sat(program)
    ]


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(program=vm_programs(max_events=6))
def test_fused_multi_pair_diff_matches_per_pair(program) -> None:
    from repro.conformance import run_diff_pipeline, run_multi_diff_pipeline
    from repro.conformance.diff import DiffConfig

    names = list(CATALOG)
    pairs = [(r, s) for r in names for s in names if r != s][:6]
    diffs = [
        DiffConfig(
            base=SynthesisConfig(
                bound=4, model=CATALOG[ref](), witness_backend="sat"
            ),
            subject=CATALOG[sub](),
        )
        for ref, sub in pairs
    ]
    fused = run_multi_diff_pipeline(diffs, [((0,), program)])
    for diff, outcome in zip(diffs, fused):
        solo = run_diff_pipeline(diff, [((0,), program)])
        assert outcome.stats.executions_enumerated == (
            solo.stats.executions_enumerated
        )
        assert outcome.reference_only_keys == solo.reference_only_keys
        assert outcome.subject_only_keys == solo.subject_only_keys
        assert set(outcome.by_key) == set(solo.by_key)
        for key, entry in outcome.by_key.items():
            assert entry.execution_key == solo.by_key[key].execution_key
            assert entry.text == solo.by_key[key].text
            assert entry.outcome_count == solo.by_key[key].outcome_count
        for bucket in (
            "both_permit",
            "both_forbid",
            "only_reference_forbids",
            "only_subject_forbids",
            "interesting",
            "minimal",
        ):
            assert getattr(outcome.stats, bucket) == getattr(
                solo.stats, bucket
            ), bucket


# ----------------------------------------------------------------------
# Session cache mechanics
# ----------------------------------------------------------------------
class TestSessionCache:
    def _program(self):
        from repro.synth.skeletons import enumerate_programs

        config = SynthesisConfig(bound=4, model=x86t_elt())
        return next(iter(enumerate_programs(config)))

    def test_hit_returns_same_session_and_list(self) -> None:
        cache = WitnessSessionCache()
        program = self._program()
        first = cache.witnesses(program)
        second = cache.witnesses(program)
        assert first is second  # the very list, not a re-enumeration
        assert cache.hits == 1 and cache.misses == 1

    def test_release_policy_drops_problem_but_keeps_witnesses(self) -> None:
        cache = WitnessSessionCache()  # keep_problems=False
        program = self._program()
        cache.witnesses(program)
        session, cached = cache.get(program)
        assert cached
        assert session.problem is None  # shrunk to the witness list
        assert session._witnesses is not None
        # A later query transparently re-translates (and counts it).
        session.has_witness(model=MODEL)
        assert session.stats.translations == 2

    def test_counter_snapshot_is_cache_warmth_independent(self) -> None:
        from repro.sat import SolverStats

        cache = WitnessSessionCache()
        program = self._program()
        cold, warm = SolverStats(), SolverStats()
        cache.witnesses(program, sink=cold)
        cache.witnesses(program, sink=warm)
        assert warm.decisions == cold.decisions
        assert warm.propagations == cold.propagations
        assert cold.translations == 1 and cold.translations_avoided == 0
        assert warm.translations == 0 and warm.translations_avoided == 1

    def test_identity_key_is_exact_not_canonical(self) -> None:
        """Isomorphic programs (same canonical class, different event
        ids/cores) must NOT share sessions: their witness streams name
        different events."""
        from repro.mtm import Event, EventKind, Program
        from repro.synth.canon import canonical_program_key
        from repro.synth.skeletons import enumerate_programs

        config = SynthesisConfig(bound=5, model=x86t_elt())
        programs = list(enumerate_programs(config))
        keys = [program_identity_key(p) for p in programs]
        assert len(set(keys)) == len(programs)

        def two_reads(prefix):
            events = {
                f"{prefix}0": Event(f"{prefix}0", EventKind.READ, 0, va="x"),
                f"{prefix}0w": Event(
                    f"{prefix}0w", EventKind.PT_WALK, 0, va="x"
                ),
            }
            return Program(
                events=events,
                threads=((f"{prefix}0",),),
                ghosts={f"{prefix}0": (f"{prefix}0w",)},
                initial_map={"x": "pa_x"},
            )

        a, b = two_reads("e"), two_reads("f")
        assert canonical_program_key(a) == canonical_program_key(b)
        assert program_identity_key(a) != program_identity_key(b)

    def test_lru_eviction(self) -> None:
        from repro.synth.skeletons import enumerate_programs

        config = SynthesisConfig(bound=5, model=x86t_elt())
        programs = list(enumerate_programs(config))[:4]
        cache = WitnessSessionCache(max_entries=2)
        for program in programs:
            cache.witnesses(program)
        assert len(cache) == 2

    def test_shared_cache_is_process_singleton(self) -> None:
        assert shared_session_cache() is shared_session_cache()

    def test_minimality_cache_clears(self) -> None:
        from repro.synth import clear_minimality_cache

        clear_minimality_cache()  # idempotent housekeeping entry point

    def test_selection_needs_a_model(self) -> None:
        from repro.errors import SynthesisError

        session = WitnessSession(self._program())
        with pytest.raises(SynthesisError):
            session.has_witness(violated_axiom="invlpg")
        with pytest.raises(SynthesisError):
            session.query_executions(violated=True)

    def test_query_limit_and_violated_model(self) -> None:
        program = self._program()
        session = WitnessSession(program)
        full = session.query_executions(model=MODEL, violated=True)
        limited = session.query_executions(model=MODEL, violated=True, limit=1)
        assert len(limited) <= 1
        assert {witness_key(e) for e in limited} <= {
            witness_key(e) for e in full
        }
        fresh_forbidden = {
            witness_key(e)
            for e in session.witnesses()
            if not MODEL.permits(e)
        }
        assert {witness_key(e) for e in full} == fresh_forbidden
        assert session.has_witness(model=MODEL, violated=True) == bool(
            fresh_forbidden
        )

    def test_bad_cache_capacity_rejected(self) -> None:
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError):
            WitnessSessionCache(max_entries=0)


# ----------------------------------------------------------------------
# CLI surface: --profile, --fresh-solver, session counter tables
# ----------------------------------------------------------------------
class TestCliSurface:
    def _run(self, capsys, argv):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr()

    def test_synthesize_sat_reports_sessions_and_profile(self, capsys) -> None:
        code, captured = self._run(
            capsys,
            [
                "synthesize",
                "--bound",
                "4",
                "--axiom",
                "invlpg",
                "--witness-backend",
                "sat",
                "--profile",
            ],
        )
        assert code == 0
        assert "sessions opened" in captured.out
        assert "translations avoided" in captured.out
        assert '"stage-profile"' in captured.out
        assert '"classify"' in captured.out

    def test_synthesize_fresh_solver_matches_incremental(self, capsys) -> None:
        code_fresh, fresh = self._run(
            capsys,
            [
                "synthesize",
                "--bound",
                "4",
                "--axiom",
                "invlpg",
                "--fresh-solver",
            ],
        )
        code_inc, incremental = self._run(
            capsys,
            ["synthesize", "--bound", "4", "--axiom", "invlpg"],
        )
        assert code_fresh == code_inc == 0

        def elts_only(text):
            return text[text.index("--- ELT") :]

        assert elts_only(fresh.out) == elts_only(incremental.out)

    def test_diff_profile_json_goes_to_stderr(self, capsys) -> None:
        shared_session_cache().clear()  # cold cache -> translate stage runs
        code, captured = self._run(
            capsys,
            [
                "diff",
                "--reference",
                "x86t_elt",
                "--subject",
                "x86t_amd_bug",
                "--bound",
                "4",
                "--witness-backend",
                "sat",
                "--json",
                "--profile",
            ],
        )
        assert code == 0  # bound 4 is not yet discriminating
        import json as json_module

        payload = json_module.loads(captured.out)
        assert payload["kind"] == "conformance-cell"
        profile = json_module.loads(captured.err)
        assert profile["kind"] == "stage-profile"
        assert "translate" in profile["stages"]

    def test_diff_all_pairs_sat_counter_table(self, capsys) -> None:
        code, captured = self._run(
            capsys,
            [
                "diff",
                "--all-pairs",
                "--bound",
                "4",
                "--witness-backend",
                "sat",
                "--profile",
            ],
        )
        assert code == 1  # discriminating pairs exist at bound 4
        assert "sessions opened" in captured.out
        assert '"stage-profile"' in captured.out

"""Tests for model-vs-model comparison (bug-detector discovery)."""

from __future__ import annotations

from repro.litmus import ALL_FIGURES
from repro.litmus.classics import ALL_CLASSICS
from repro.models import (
    Agreement,
    compare_models,
    discriminating_elts,
    sc_t,
    sequential_consistency,
    x86t_amd_bug,
    x86t_elt,
    x86tso,
)
from repro.synth import SynthesisConfig, synthesize


def figure_executions():
    return [make().execution for make in ALL_FIGURES.values()]


class TestCompareModels:
    def test_amd_bug_detectors_include_fig11(self) -> None:
        comparison = compare_models(
            reference=x86t_elt(),
            subject=x86t_amd_bug(),
            executions=figure_executions(),
        )
        # Fig 11 violates only invlpg, so it lands in the discriminating
        # bucket; Fig 10a also violates sc_per_loc, so both models forbid.
        from repro.synth import canonical_execution_key

        fig11_key = canonical_execution_key(ALL_FIGURES["fig11"]().execution)
        discriminating_keys = {
            canonical_execution_key(e) for e in comparison.discriminating
        }
        assert fig11_key in discriminating_keys
        assert not comparison.equivalent_on_inputs

    def test_identical_models_equivalent(self) -> None:
        comparison = compare_models(
            x86t_elt(), x86t_elt(), figure_executions()
        )
        assert comparison.equivalent_on_inputs
        assert not comparison.discriminating

    def test_buckets_partition_inputs(self) -> None:
        executions = figure_executions()
        comparison = compare_models(x86t_elt(), x86tso(), executions)
        total = sum(len(v) for v in comparison.buckets.values())
        assert total == len(executions)

    def test_counts_keys(self) -> None:
        comparison = compare_models(x86t_elt(), x86tso(), figure_executions())
        assert set(comparison.counts()) == {a.value for a in Agreement}

    def test_sc_vs_tso_on_classics(self) -> None:
        # SC forbids sb which TSO permits: sb is discriminating with TSO
        # as reference-permitting side swapped.
        executions = [make().execution for make in ALL_CLASSICS.values()]
        comparison = compare_models(
            reference=sequential_consistency(),
            subject=x86tso(),
            executions=executions,
        )
        assert len(comparison.discriminating) >= 1  # sb at least

    def test_synthesized_detectors_for_amd_bug(self) -> None:
        suite = synthesize(
            SynthesisConfig(bound=5, model=x86t_elt(), target_axiom="invlpg")
        )
        detectors = discriminating_elts(
            x86t_elt(), x86t_amd_bug(), [elt.execution for elt in suite.elts]
        )
        assert detectors  # the invlpg suite contains pure invlpg violations


class TestScTransistency:
    def test_sc_t_refines_x86t_elt(self) -> None:
        # sc_t forbids everything x86t_elt forbids on the figure set...
        strong, weak = sc_t(), x86t_elt()
        for execution in figure_executions():
            if strong.permits(execution):
                assert weak.permits(execution)

    def test_sc_t_forbids_sb_and_stale_mappings(self) -> None:
        model = sc_t()
        from repro.litmus.classics import sb

        assert model.forbids(sb().execution)
        assert model.forbids(ALL_FIGURES["fig11"]().execution)

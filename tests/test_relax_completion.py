"""The rare relaxation path: removing a remap can *create* aliasing among
surviving writes, leaving the projected coherence order non-total.  The
§IV-B check must then complete the order (every linear extension) rather
than reject the relaxation.

Construction: x initially maps to pa_a; remap-1 points x at pa_b, remap-2
points y at pa_a.  W_x (via remap-1) writes pa_b, W_y (via remap-2) writes
pa_a — different locations, no co edge.  Removing remap-1's group reverts
W_x to pa_a, now aliasing W_y: the relaxed witness has two same-location
writes with no surviving order.
"""

from __future__ import annotations

from repro.models import x86t_elt
from repro.mtm import Execution, ProgramBuilder
from repro.synth import relaxation_becomes_permitted, removal_groups


def build():
    b = ProgramBuilder()
    b.map("x", "pa_a").map("y", "pa_y")
    c0 = b.thread()
    wpte_x = c0.pte_write("x", "pa_b")  # remap-1 (+ INVLPG)
    wpte_y = c0.pte_write("y", "pa_a")  # remap-2 (+ INVLPG)
    w_x = c0.write("x")
    w_y = c0.write("y")
    program = b.build()
    execution = Execution(
        program,
        rf=[
            (wpte_x.eid, b.walk_of(w_x).eid),
            (wpte_y.eid, b.walk_of(w_y).eid),
        ],
        co=[
            (wpte_x.eid, b.dirty_of(w_x).eid),
            (wpte_y.eid, b.dirty_of(w_y).eid),
        ],
    )
    return b, program, execution, wpte_x


def test_setup_has_disjoint_write_locations() -> None:
    b, program, execution, _ = build()
    pas = {
        execution.pa_of[eid]
        for eid, e in program.events.items()
        if e.kind.value == "W"
    }
    assert pas == {"pa_a", "pa_b"}


def test_removal_induced_aliasing_is_completed_not_rejected() -> None:
    b, program, execution, wpte_x = build()
    group = next(g for g in removal_groups(program) if wpte_x.eid in g)
    # The check must enumerate co completions for the newly-aliased writes
    # and find a permitted one (it must not crash on non-total co).
    assert relaxation_becomes_permitted(
        execution, x86t_elt(), removed=group
    )


def test_every_group_relaxation_is_well_defined() -> None:
    _, program, execution, _ = build()
    model = x86t_elt()
    for group in removal_groups(program):
        # Either verdict is acceptable; the point is none of them raises.
        relaxation_becomes_permitted(execution, model, removed=group)

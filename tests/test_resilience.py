"""Tests for repro.resilience: retry policy, fault injection, the
retrying scheduler, store integrity, and cooperative solver deadlines."""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import pytest

from repro.conformance import DiffConfig, run_all_pairs, run_diff
from repro.errors import ShardFailure, SolverInterrupted
from repro.litmus import suite_from_synthesis
from repro.models import x86t_amd_bug, x86t_elt
from repro.obs import MetricsRegistry, install_registry
from repro.orchestrate import SuiteStore, run_sharded, run_sweep_sharded
from repro.orchestrate.shards import ShardSpec
from repro.reporting import render_shard_runtimes
from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    FaultPlan,
    FileLock,
    InjectedFault,
    RetryPolicy,
    current_deadline,
    deadline_exceeded,
    deadline_scope,
    default_chaos_plan,
    flip_bit,
    run_resilient_tasks,
)
from repro.sat import CdclSolver
from repro.synth import SynthesisConfig, synthesize, synthesize_sweep


def config_for(axiom: str, bound: int = 4) -> SynthesisConfig:
    return SynthesisConfig(bound=bound, model=x86t_elt(), target_axiom=axiom)


def suite_bytes(result) -> bytes:
    return suite_from_synthesis(result).dumps().encode("utf-8")


class TestRetryPolicy:
    def test_max_attempts_counts_the_first_run(self) -> None:
        assert RetryPolicy(max_retries=0).max_attempts == 1
        assert RetryPolicy(max_retries=3).max_attempts == 4
        assert DEFAULT_RETRY_POLICY.max_attempts == 3

    def test_backoff_is_deterministic_and_doubling(self) -> None:
        policy = RetryPolicy(backoff_base_s=0.05, backoff_factor=2.0)
        assert [policy.backoff_s(a) for a in (1, 2, 3)] == [0.05, 0.1, 0.2]
        assert policy.backoff_s(1) == policy.backoff_s(1)

    def test_zero_base_disables_backoff(self) -> None:
        policy = RetryPolicy(backoff_base_s=0.0)
        assert policy.backoff_s(1) == 0.0
        assert policy.backoff_s(5) == 0.0


class TestFaultPlan:
    def test_same_seed_same_decisions(self) -> None:
        a = default_chaos_plan(42)
        b = default_chaos_plan(42)
        for label in ("s0/4", "s1/4", "s7/8"):
            assert a.crashes(label) == b.crashes(label)
            assert a.crash_mode(label, 1) == b.crash_mode(label, 1)
            assert a.delay_s(label, 1) == b.delay_s(label, 1)

    def test_different_seeds_eventually_differ(self) -> None:
        labels = [f"s{i}/16" for i in range(16)]
        a = [default_chaos_plan(1).crashes(label) for label in labels]
        b = [default_chaos_plan(2).crashes(label) for label in labels]
        assert a != b

    def test_inline_crash_downgrades_to_raise(self) -> None:
        # exit-mode only hard-exits inside a worker process; inline it
        # must raise so the coordinating process survives.
        plan = FaultPlan(seed=0, crash_rate=1.0, exit_rate=1.0)
        with pytest.raises(InjectedFault):
            plan.apply_worker_fault("s0/2", 1)
        # Beyond crash_attempts the shard passes.
        plan.apply_worker_fault("s0/2", 2)

    def test_store_corruption_is_first_write_only(self) -> None:
        plan = FaultPlan(seed=0, store_corrupt_rate=1.0)
        assert plan.take_store_corruption("deadbeef")
        assert not plan.take_store_corruption("deadbeef")
        assert plan.take_store_corruption("cafef00d")

    def test_flip_bit_changes_exactly_one_bit(self) -> None:
        data = bytes(range(16))
        flipped = flip_bit(data, 133)
        assert len(flipped) == len(data)
        diff = [i for i in range(16) if flipped[i] != data[i]]
        assert len(diff) == 1
        assert flip_bit(flipped, 133) == data
        assert flip_bit(b"", 3) == b""


class TestDeadlineScope:
    def test_installs_and_restores(self) -> None:
        assert current_deadline() is None
        with deadline_scope(100.0):
            assert current_deadline() == 100.0
        assert current_deadline() is None

    def test_nested_scopes_keep_the_earliest(self) -> None:
        with deadline_scope(50.0):
            with deadline_scope(80.0):
                assert current_deadline() == 50.0
            with deadline_scope(20.0):
                assert current_deadline() == 20.0
            assert current_deadline() == 50.0

    def test_none_keeps_the_enclosing_deadline(self) -> None:
        with deadline_scope(50.0):
            with deadline_scope(None):
                assert current_deadline() == 50.0

    def test_deadline_exceeded_tracks_the_clock(self) -> None:
        assert not deadline_exceeded()  # no deadline installed
        with deadline_scope(time.monotonic() + 60.0):
            assert not deadline_exceeded()
        with deadline_scope(time.monotonic() - 1.0):
            assert deadline_exceeded()


# -- the scheduler on synthetic tasks ---------------------------------

FAST = RetryPolicy(max_retries=2, backoff_base_s=0.0)


@dataclass(frozen=True)
class FlakyTask:
    """Succeeds only from attempt ``succeed_at`` on."""

    spec: ShardSpec
    succeed_at: int = 1
    attempt: int = 1


def flaky_worker(task: FlakyTask) -> str:
    if task.attempt < task.succeed_at:
        raise RuntimeError(f"transient failure on attempt {task.attempt}")
    return f"{task.spec.label}@{task.attempt}"


class TestSchedulerInline:
    def test_clean_tasks_run_once(self) -> None:
        tasks = [(i, FlakyTask(ShardSpec(i, 3))) for i in range(3)]
        outcome = run_resilient_tasks(tasks, flaky_worker, jobs=1, policy=FAST)
        assert outcome.results == {0: "s0/3@1", 1: "s1/3@1", 2: "s2/3@1"}
        assert not outcome.failures
        assert not outcome.stats.any_event()

    def test_transient_failure_is_retried_to_success(self) -> None:
        tasks = [(0, FlakyTask(ShardSpec(0, 1), succeed_at=3))]
        outcome = run_resilient_tasks(tasks, flaky_worker, jobs=1, policy=FAST)
        assert outcome.results == {0: "s0/1@3"}
        assert outcome.stats.retries == 2
        assert not outcome.failures

    def test_poison_task_is_quarantined_with_attempt_count(self) -> None:
        tasks = [
            (0, FlakyTask(ShardSpec(0, 2), succeed_at=99)),
            (1, FlakyTask(ShardSpec(1, 2))),
        ]
        outcome = run_resilient_tasks(tasks, flaky_worker, jobs=1, policy=FAST)
        # The healthy task still completed; the poison one is on record.
        assert outcome.results == {1: "s1/2@1"}
        assert [f.label for f in outcome.failures] == ["s0/2"]
        assert outcome.failures[0].attempts == FAST.max_attempts
        assert outcome.failures[0].kind == "exception"
        assert "transient failure" in outcome.failures[0].error
        assert outcome.stats.quarantined == 1

    def test_quarantine_false_raises_shard_failure(self) -> None:
        tasks = [(0, FlakyTask(ShardSpec(0, 1), succeed_at=99))]
        policy = replace(FAST, quarantine=False)
        with pytest.raises(ShardFailure) as excinfo:
            run_resilient_tasks(tasks, flaky_worker, jobs=1, policy=policy)
        assert excinfo.value.label == "s0/1"
        assert excinfo.value.attempts == policy.max_attempts

    def test_events_surface_as_informational_counters(self) -> None:
        registry = MetricsRegistry()
        previous = install_registry(registry)
        try:
            tasks = [(0, FlakyTask(ShardSpec(0, 1), succeed_at=2))]
            run_resilient_tasks(tasks, flaky_worker, jobs=1, policy=FAST)
        finally:
            install_registry(previous)
        assert registry.info_counters.get("resilience.retries") == 1
        # Informational: never part of the deterministic manifest surface.
        assert "resilience.retries" not in registry.counters


class TestSchedulerTimeouts:
    def test_stuck_shard_is_recycled_and_retried(self) -> None:
        """A wedged worker can't be cancelled: the pool is recycled, the
        expired shard charged an attempt, and its retry completes."""
        from tests._scheduler_workers import SleepyTask, stuck_worker

        from repro.resilience import PoolManager

        tasks = [(i, SleepyTask(ShardSpec(i, 2))) for i in range(2)]
        policy = RetryPolicy(shard_timeout_s=3.0, backoff_base_s=0.0)
        pool = PoolManager(2)
        try:
            outcome = run_resilient_tasks(
                tasks, stuck_worker, jobs=2, policy=policy, pool=pool
            )
        finally:
            pool.shutdown()
        assert not outcome.failures
        assert set(outcome.results) == {0, 1}
        # The stuck shard needed at least a second attempt; the healthy
        # one may have been collateral of the recycle but still finished.
        assert int(outcome.results[0].rsplit("@", 1)[1]) >= 2
        assert outcome.stats.shard_timeouts >= 1
        assert outcome.stats.pool_rebuilds >= 1


# -- the real orchestrator under injected faults ----------------------


class TestChaosOrchestration:
    def test_worker_kills_recover_byte_identical(self) -> None:
        """Every shard hard-exits its worker on attempts 1 and 2 (>= 2
        kills, pool rebuilt after each collapse); retries succeed and the
        merged suite is byte-identical to the fault-free serial run."""
        config = config_for("sc_per_loc")
        plan = FaultPlan(seed=3, crash_rate=1.0, exit_rate=1.0, crash_attempts=2)
        chaotic = run_sharded(
            config,
            jobs=2,
            shard_count=4,
            retry=RetryPolicy(backoff_base_s=0.0),
            faults=plan,
        )
        assert not chaotic.degraded
        assert chaotic.resilience.pool_rebuilds >= 2
        serial = synthesize(config_for("sc_per_loc"))
        assert suite_bytes(chaotic.result) == suite_bytes(serial)

    def test_raise_mode_crashes_recover_inline(self) -> None:
        config = config_for("invlpg")
        plan = FaultPlan(seed=5, crash_rate=1.0, exit_rate=0.0, crash_attempts=1)
        chaotic = run_sharded(
            config,
            jobs=1,
            shard_count=3,
            retry=RetryPolicy(backoff_base_s=0.0),
            faults=plan,
        )
        assert not chaotic.degraded
        assert chaotic.resilience.retries == 3  # one per shard
        serial = synthesize(config_for("invlpg"))
        assert suite_bytes(chaotic.result) == suite_bytes(serial)

    def test_poison_shard_degrades_but_merges_the_rest(self) -> None:
        # Seed 1 targets exactly s0/4 (asserted below so a FaultPlan
        # hashing change can't silently defang this test); its crashes
        # outlast the retry budget, so it is quarantined.
        plan = FaultPlan(seed=1, crash_rate=0.25, exit_rate=0.0, crash_attempts=99)
        targeted = [f"s{i}/4" for i in range(4) if plan.crashes(f"s{i}/4")]
        assert targeted == ["s0/4"]

        config = config_for("sc_per_loc")
        degraded = run_sharded(
            config,
            jobs=1,
            shard_count=4,
            retry=RetryPolicy(backoff_base_s=0.0),
            faults=plan,
        )
        assert degraded.degraded
        assert degraded.result.stats.degraded
        assert [f.label for f in degraded.failures] == ["s0/4"]
        assert degraded.report.failed_shards == ["s0/4"]
        # The other three shards merged: a strict, non-empty subset.
        serial = synthesize(config_for("sc_per_loc"))
        assert 0 < degraded.result.count < serial.count
        assert set(degraded.result.keys()) < set(serial.keys())
        # And the run report says so out loud.
        rendered = render_shard_runtimes(degraded)
        assert "DEGRADED" in rendered
        assert "s0/4" in rendered

    def test_degraded_results_are_never_cached(self, tmp_path) -> None:
        plan = FaultPlan(seed=1, crash_rate=0.25, exit_rate=0.0, crash_attempts=99)
        store = SuiteStore(tmp_path)
        config = config_for("sc_per_loc")
        policy = RetryPolicy(backoff_base_s=0.0)
        first = run_sharded(
            config, jobs=1, shard_count=4, store=store, retry=policy, faults=plan
        )
        assert first.degraded
        # The three completed shards were cached; the merged suite was not.
        assert store.load_suite(config) is None
        # A fault-free rerun recomputes only the quarantined shard and
        # produces the complete suite.
        healed = run_sharded(config, jobs=1, shard_count=4, store=store)
        assert not healed.degraded
        assert healed.shard_cache_hits == 3
        assert healed.shard_cache_misses == 1
        serial = synthesize(config_for("sc_per_loc"))
        assert suite_bytes(healed.result) == suite_bytes(serial)

    def test_store_corruption_is_quarantined_and_healed_on_resume(
        self, tmp_path
    ) -> None:
        """A chaos plan flips a bit in every first store write; the
        resumed run quarantines the damage, recomputes, and still
        matches the fault-free bytes."""
        config = config_for("invlpg")
        corrupting = SuiteStore(
            tmp_path, faults=FaultPlan(seed=9, store_corrupt_rate=1.0)
        )
        first = run_sharded(config, jobs=1, shard_count=2, store=corrupting)
        assert not first.degraded  # in-memory result is unaffected

        resumed_store = SuiteStore(tmp_path)
        resumed = run_sharded(config, jobs=1, shard_count=2, store=resumed_store)
        assert resumed_store.counters.corrupt >= 1
        assert not resumed.suite_cache_hit  # the suite entry was corrupt
        serial = synthesize(config_for("invlpg"))
        assert suite_bytes(resumed.result) == suite_bytes(serial)
        # Third run: everything was re-written clean, so it's a pure hit.
        final = run_sharded(config, jobs=1, shard_count=2, store=resumed_store)
        assert final.suite_cache_hit


class TestChaosDiff:
    """The conformance pipelines run through the same scheduler."""

    def amd_diff(self, bound: int = 4) -> "DiffConfig":
        return DiffConfig(
            base=SynthesisConfig(bound=bound, model=x86t_elt()),
            subject=x86t_amd_bug(),
        )

    def test_diff_crashes_recover_identical_cell(self) -> None:
        plan = FaultPlan(seed=5, crash_rate=1.0, exit_rate=0.0, crash_attempts=1)
        chaotic = run_diff(
            self.amd_diff(),
            jobs=1,
            shard_count=3,
            retry=RetryPolicy(backoff_base_s=0.0),
            faults=plan,
        )
        assert not chaotic.degraded
        assert chaotic.resilience.retries == 3  # one per shard
        clean = run_diff(self.amd_diff(), jobs=1, shard_count=3)
        assert chaotic.cell.keys() == clean.cell.keys()

    def test_all_pairs_poison_task_degrades_every_riding_pair(self) -> None:
        # Seed 10 targets exactly the fused task for shard s0/2; every
        # pair rides every fused task, so all cells degrade but each
        # still merges its completed s1/2 shard.
        plan = FaultPlan(seed=10, crash_rate=0.25, exit_rate=0.0, crash_attempts=99)
        assert [l for l in ("s0/2", "s1/2") if plan.crashes(l)] == ["s0/2"]

        base = SynthesisConfig(bound=4, model=x86t_elt())
        pairs = [("sc", "x86tso"), ("x86t_elt", "x86t_amd_bug")]
        matrix, records = run_all_pairs(
            base,
            jobs=1,
            shard_count=2,
            pairs=pairs,
            retry=RetryPolicy(backoff_base_s=0.0),
            faults=plan,
        )
        assert len(records) == 2
        for record in records:
            assert record.degraded
            assert [f.label for f in record.failures] == ["s0/2"]
            assert record.report.failed_shards
            assert record.report.per_shard  # the healthy shard merged
        assert set(matrix.cells) == set(pairs)

    def test_all_pairs_degraded_cells_are_not_cached(self, tmp_path) -> None:
        plan = FaultPlan(seed=10, crash_rate=0.25, exit_rate=0.0, crash_attempts=99)
        base = SynthesisConfig(bound=4, model=x86t_elt())
        pairs = [("x86t_elt", "x86t_amd_bug")]
        store = SuiteStore(tmp_path)
        _, records = run_all_pairs(
            base,
            jobs=1,
            shard_count=2,
            pairs=pairs,
            store=store,
            retry=RetryPolicy(backoff_base_s=0.0),
            faults=plan,
        )
        assert records[0].degraded
        # A fault-free rerun reuses the healthy shard, recomputes the
        # poisoned one, and matches the never-faulted matrix.
        _, healed = run_all_pairs(
            base, jobs=1, shard_count=2, pairs=pairs, store=store
        )
        assert not healed[0].cell_cache_hit  # degraded cell was not cached
        assert not healed[0].degraded
        assert healed[0].shard_cache_hits == 1
        clean = run_diff(self.amd_diff(), jobs=1, shard_count=2)
        assert healed[0].cell.keys() == clean.cell.keys()


class TestStoreIntegrity:
    def test_put_records_payload_digest(self, tmp_path) -> None:
        store = SuiteStore(tmp_path)
        store.put("somekey", {"x": 1}, {"kind": "test"})
        meta = store._read_meta("somekey")
        assert meta is not None
        assert len(meta["payload_blake2b"]) == 64
        assert meta["payload_bytes"] > 0

    def test_verify_clean_store(self, tmp_path) -> None:
        store = SuiteStore(tmp_path)
        store.put("k1", [1], {"kind": "test"})
        store.put("k2", [2], {"kind": "test"})
        report = store.verify()
        assert report.clean
        assert (report.scanned, report.ok) == (2, 2)

    def test_verify_flags_corrupt_and_orphaned(self, tmp_path) -> None:
        store = SuiteStore(tmp_path)
        store.put("good", [1], {"kind": "test"})
        store.put("bitrot", [2], {"kind": "test"})
        store.put("torn", [3], {"kind": "test"})
        payload = store._payload_path("bitrot")
        payload.write_bytes(flip_bit(payload.read_bytes(), 17))
        store._meta_path("torn").unlink()

        report = store.verify()
        assert not report.clean
        assert report.corrupt == ["bitrot"]
        assert report.orphaned == ["torn"]
        assert report.ok == 1
        json_report = report.to_json()
        assert json_report["clean"] is False
        assert json_report["repaired"] is False
        # Non-repair verify must not move anything.
        assert payload.exists()

    def test_verify_repair_quarantines_then_scans_clean(self, tmp_path) -> None:
        store = SuiteStore(tmp_path)
        store.put("good", [1], {"kind": "test"})
        store.put("bitrot", [2], {"kind": "test"})
        payload = store._payload_path("bitrot")
        payload.write_bytes(flip_bit(payload.read_bytes(), 17))

        report = store.verify(repair=True)
        assert report.repaired
        assert not payload.exists()
        assert (store.quarantine_dir / "bitrot.pkl").exists()
        again = store.verify()
        assert again.clean
        assert again.scanned == 1

    def test_file_lock_is_reentrant_and_best_effort(self, tmp_path) -> None:
        path = tmp_path / ".lock"
        lock = FileLock(path)
        with lock:
            with lock:  # reentrant: no self-deadlock
                assert lock._depth == 2
        assert lock._depth == 0
        # A second holder times out and proceeds unlocked rather than
        # hanging the run.
        holder = FileLock(path)
        assert holder.acquire()
        contender = FileLock(path, timeout_s=0.05, poll_s=0.01)
        assert not contender.acquire()
        assert contender.timed_out
        contender.release()
        holder.release()
        # With the holder gone the lock is takeable again.
        assert contender.acquire()
        contender.release()


class TestSolverDeadline:
    def pigeonhole(self, holes: int):
        from repro.sat import Cnf

        pigeons = holes + 1
        cnf = Cnf(pigeons * holes)

        def var(pigeon: int, hole: int) -> int:
            return pigeon * holes + hole + 1

        for pigeon in range(pigeons):
            cnf.add_clause([var(pigeon, hole) for hole in range(holes)])
        for hole in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add_clause([-var(p1, hole), -var(p2, hole)])
        return cnf

    def test_expired_deadline_interrupts_hard_solve(self) -> None:
        solver = CdclSolver(self.pigeonhole(8))
        with deadline_scope(time.monotonic() - 1.0):
            with pytest.raises(SolverInterrupted):
                solver.solve()

    def test_solver_stays_usable_after_interrupt(self) -> None:
        solver = CdclSolver(self.pigeonhole(7))
        with deadline_scope(time.monotonic() - 1.0):
            with pytest.raises(SolverInterrupted):
                solver.solve()
        # Backtracked to level 0 on the way out: the same solver can
        # finish the query once the deadline is gone.
        assert not solver.solve().satisfiable

    def test_no_deadline_costs_nothing(self) -> None:
        assert current_deadline() is None
        assert not CdclSolver(self.pigeonhole(4)).solve().satisfiable


class TestSweepBudgetBoundary:
    """The budget expiring between bounds: the point times out, its
    partial results are retained, later bounds are skipped, and nothing
    partial is cached — inline and pooled."""

    def test_inline_sweep_retains_partial_timed_out_point(self) -> None:
        base = SynthesisConfig(bound=6, model=x86t_elt())
        sweep = synthesize_sweep(
            base,
            axioms=["sc_per_loc"],
            min_bound=4,
            max_bound=6,
            time_budget_per_run_s=0.0,
        )
        assert len(sweep.points) == 1
        point = sweep.points[0]
        assert point.result.stats.timed_out
        assert point.result.count >= 0  # partial suite object retained
        assert sweep.skipped == [("sc_per_loc", 5), ("sc_per_loc", 6)]
        assert sweep.timed_out_points() == [("sc_per_loc", 4)]
        assert sweep.degraded_points() == []

    def test_pooled_sweep_times_out_and_caches_nothing(self, tmp_path) -> None:
        store = SuiteStore(tmp_path)
        base = SynthesisConfig(bound=6, model=x86t_elt())
        sweep, records = run_sweep_sharded(
            base,
            axioms=["sc_per_loc"],
            min_bound=4,
            max_bound=6,
            time_budget_per_run_s=0.0,
            jobs=2,
            store=store,
        )
        assert len(sweep.points) == 1
        assert sweep.points[0].result.stats.timed_out
        assert records[0].result.stats.timed_out
        assert sweep.skipped == [("sc_per_loc", 5), ("sc_per_loc", 6)]
        # Timed-out shards and suites must never be cached.
        assert store.counters.stores == 0

"""Golden-digest regression tests for synthesized suites.

Each entry pins the SHA-256 of the canonical ``.elts`` text for one
(model, target axiom, bound, witness backend) at CI-fast bounds.  The
point is to freeze the *artifact*: a refactor that silently changes the
synthesized suite — different ELT set, different representative
witnesses, different ordering, different serialization — fails here even
if every behavioral test still passes.

What the digests encode:

* **jobs invariance** — sharded runs must reproduce the serial bytes,
  so one digest covers every ``--jobs``/``--shards`` plan (asserted
  explicitly against a 4-shard run);
* **backend agreement** — the explicit and SAT enumerators produce the
  same *bytes* everywhere: representative selection is order-free
  (identity-ranked class winners; witnesses by (canonical key, witness
  sort key)), so the historical invlpg@5 divergence — where the SAT
  stream order picked a different representative witness — is healed
  and each (axiom, bound) carries exactly one digest;
* **diff-suite backend invariance** — the differential pipeline uses
  the same order-free selection, so its suite bytes are pinned once for
  *both* backends;
* **solver-path invariance** — every digest is asserted under both
  ``incremental=True`` (witness sessions: one translation per program,
  cached execution lists replayed across suites) and
  ``incremental=False`` (the fresh-solver oracle); the session path's
  full enumeration runs on a cold solver over the shared translation
  precisely so these digests cannot drift apart;
* **symmetry invariance** — every digest is asserted with
  ``symmetry=True`` (witness-orbit pruning + SAT lex-leader breaking +
  orbit-level program dedup) and with the ``--no-symmetry`` oracle;
  orbit pruning keeps exactly the witnesses the representative
  tie-break can select, so the bytes cannot depend on it;
* **solver-core invariance** — every digest is asserted under both
  ``solver_core="array"`` (the flat-arena propagation core) and
  ``solver_core="object"`` (the per-clause-object oracle); the two
  cores run lockstep-identical searches by contract, so the bytes
  cannot depend on the storage layout.

When an intentional engine change alters output, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden_digests.py --tb=short

and update the constants below in the same commit that changes the
engine.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.litmus import suite_from_diff, suite_from_synthesis
from repro.models import x86t_amd_bug, x86t_elt
from repro.orchestrate import run_sharded
from repro.sat import SOLVER_CORES
from repro.synth import SynthesisConfig, synthesize

#: (target axiom, bound, witness backend) -> sha256 of the suite text.
GOLDEN_SUITES = {
    ("sc_per_loc", 4, "explicit"): (
        "ac49991e56d2736b12172f6a90de99d911ddd1db978c4efd2cc59b42a5255a54"
    ),
    ("sc_per_loc", 4, "sat"): (
        "ac49991e56d2736b12172f6a90de99d911ddd1db978c4efd2cc59b42a5255a54"
    ),
    ("rmw_atomicity", 4, "explicit"): (
        "0b86a9e706cda4e3456915754986b5c2f7979b1a2fb8ce519606d56b1a29a0de"
    ),
    ("rmw_atomicity", 4, "sat"): (
        "0b86a9e706cda4e3456915754986b5c2f7979b1a2fb8ce519606d56b1a29a0de"
    ),
    ("causality", 4, "explicit"): (
        "e6164443bdbacb8c19965d2f2e88e6a674e8e6ee5309325b26f9304114dc9aee"
    ),
    ("causality", 4, "sat"): (
        "e6164443bdbacb8c19965d2f2e88e6a674e8e6ee5309325b26f9304114dc9aee"
    ),
    ("invlpg", 4, "explicit"): (
        "9344a49955896b85c31e5d04e643578a76f8ba0c8ff821cccb8df3c7414a1701"
    ),
    ("invlpg", 4, "sat"): (
        "9344a49955896b85c31e5d04e643578a76f8ba0c8ff821cccb8df3c7414a1701"
    ),
    ("tlb_causality", 4, "explicit"): (
        "939b1aa931d16249981ebdc5fb99a6d4efe247ad246daf8d54995b1fb4509a4c"
    ),
    ("tlb_causality", 4, "sat"): (
        "939b1aa931d16249981ebdc5fb99a6d4efe247ad246daf8d54995b1fb4509a4c"
    ),
    # Historically the one cross-backend divergence (the SAT stream
    # order used to pick a different representative witness for one of
    # the 3 classes); order-free representative selection healed it.
    ("invlpg", 5, "explicit"): (
        "88fceb81be0e0844b116b1f4bfe971df3ec4c85ef19d8c17b9e38b13e5fc722c"
    ),
    ("invlpg", 5, "sat"): (
        "88fceb81be0e0844b116b1f4bfe971df3ec4c85ef19d8c17b9e38b13e5fc722c"
    ),
}

#: The x86t_elt-vs-x86t_amd_bug diff suite at the paper's bound — one
#: digest for both backends (diff representatives are canonical-key
#: selected, so the bytes are backend-invariant by construction).
GOLDEN_DIFF_SUITE = (
    "2c9e0302228da425574d82f8e0785475e44cd623b62721fab88f943db19a5248"
)


def suite_digest(axiom: str, bound: int, backend: str, **kwargs) -> str:
    config = SynthesisConfig(
        bound=bound,
        model=x86t_elt(),
        target_axiom=axiom,
        witness_backend=backend,
        **kwargs,
    )
    result = synthesize(config)
    text = suite_from_synthesis(result, prefix=axiom).dumps()
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@pytest.mark.parametrize(
    "solver_core",
    [
        "object",
        "array",
        pytest.param(
            "accel",
            marks=pytest.mark.skipif(
                "accel" not in SOLVER_CORES,
                reason="repro.sat._accel extension not built",
            ),
        ),
    ],
)
@pytest.mark.parametrize("symmetry", [False, True], ids=["no-symmetry", "symmetry"])
@pytest.mark.parametrize("incremental", [False, True], ids=["fresh", "incremental"])
@pytest.mark.parametrize(
    "axiom,bound,backend", sorted(GOLDEN_SUITES), ids=lambda v: str(v)
)
def test_serial_suite_matches_golden_digest(
    axiom, bound, backend, incremental, symmetry, solver_core
) -> None:
    """Every pinned digest must hold on BOTH solver paths (the
    incremental-session path and the fresh-solver oracle), on both
    symmetry paths (orbit-pruned and the --no-symmetry oracle), and on
    every solver core (the array propagation core, the C-accelerated
    core when its extension is built, and the object-core oracle —
    lockstep-identical searches by contract).
    Session reuse across these parametrized cases is exactly the
    production sweep workload, so cache warmth is deliberately not
    reset between them."""
    assert suite_digest(
        axiom,
        bound,
        backend,
        incremental=incremental,
        symmetry=symmetry,
        solver_core=solver_core,
    ) == GOLDEN_SUITES[(axiom, bound, backend)]


@pytest.mark.parametrize("backend", ["explicit", "sat"])
def test_sharded_run_matches_golden_digest(backend) -> None:
    """--jobs 1 vs --jobs 4 byte-identity, via the 4-shard plan a
    4-worker run executes (shard plans, not process counts, are what
    could change bytes — worker processes run the identical code)."""
    config = SynthesisConfig(
        bound=4,
        model=x86t_elt(),
        target_axiom="sc_per_loc",
        witness_backend=backend,
    )
    orchestrated = run_sharded(config, jobs=1, shard_count=4)
    text = suite_from_synthesis(
        orchestrated.result, prefix="sc_per_loc"
    ).dumps()
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    assert digest == GOLDEN_SUITES[("sc_per_loc", 4, backend)]


def test_backends_agree_on_canonical_classes_at_invlpg5() -> None:
    """invlpg@5 was historically the one cross-backend representative
    divergence; order-free selection converged it.  Keep the structural
    assertion (identical classes, count 3) as its own check so a future
    byte regression here is diagnosed at the right level."""
    results = {}
    for backend in ("explicit", "sat"):
        results[backend] = synthesize(
            SynthesisConfig(
                bound=5,
                model=x86t_elt(),
                target_axiom="invlpg",
                witness_backend=backend,
            )
        )
    assert results["explicit"].keys() == results["sat"].keys()
    assert results["explicit"].count == results["sat"].count == 3


@pytest.mark.parametrize("symmetry", [False, True], ids=["no-symmetry", "symmetry"])
@pytest.mark.parametrize("incremental", [False, True], ids=["fresh", "incremental"])
@pytest.mark.parametrize("backend", ["explicit", "sat"])
def test_diff_suite_matches_golden_digest(backend, incremental, symmetry) -> None:
    from repro.conformance import DiffConfig, diff_models

    cell = diff_models(
        DiffConfig(
            base=SynthesisConfig(
                bound=5,
                model=x86t_elt(),
                witness_backend=backend,
                incremental=incremental,
                symmetry=symmetry,
            ),
            subject=x86t_amd_bug(),
        )
    )
    text = suite_from_diff(cell).dumps()
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    assert digest == GOLDEN_DIFF_SUITE

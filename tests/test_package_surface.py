"""The documented top-level API surface must stay importable."""

from __future__ import annotations

import pytest

import repro


def test_version() -> None:
    assert repro.__version__


@pytest.mark.parametrize("name", sorted(set(repro.__all__) - {"__version__"}))
def test_top_level_exports(name: str) -> None:
    assert getattr(repro, name) is not None


def test_unknown_attribute_raises() -> None:
    with pytest.raises(AttributeError):
        repro.not_a_thing


def test_readme_quickstart_snippet_runs() -> None:
    from repro import Execution, ProgramBuilder, SynthesisConfig, synthesize, x86t_elt

    b = ProgramBuilder()
    b.map("x", "pa_a")
    core = b.thread()
    core.pte_write("x", "pa_b")
    core.read("x")
    stale = Execution(b.build())

    model = x86t_elt()
    verdict = model.check(stale)
    assert verdict.forbidden
    assert set(verdict.violated) == {"sc_per_loc", "invlpg"}

    suite = synthesize(
        SynthesisConfig(bound=5, model=model, target_axiom="invlpg")
    )
    assert suite.count == 3

"""Differential fuzzing of the SAT substrate.

Seeded-random workloads, larger and more adversarial than the hypothesis
property tests, cross-checking every layer against an independent oracle:

* random CNFs against the brute-force procedures in ``repro.sat.reference``
  (satisfiability, full and projected model counts, assumption solving);
* random bounded relational problems cross-checking the Kodkod-style
  translator against the concrete evaluator in ``repro.relational.eval``
  (every enumerated instance satisfies the constraints; the instance *set*
  equals an exhaustive search over all relation assignments);
* deep-closure / wide-lone instances whose circuits nest far beyond the
  Python recursion limit, exercising the iterative Tseitin worklist and
  the iterative circuit evaluator.
"""

from __future__ import annotations

import random
import sys
from itertools import chain, combinations

from repro.relational import (
    Iden,
    Literal,
    Problem,
    TupleSet,
    Univ,
    acyclic,
    exists,
    forall,
    no,
    some,
    subset,
)
from repro.relational.eval import eval_formula
from repro.sat import (
    CdclSolver,
    Cnf,
    SolverStats,
    brute_force_count,
    brute_force_models,
    brute_force_satisfiable,
    count_models,
    iter_models,
    solve_cnf,
)

# ----------------------------------------------------------------------
# Random CNFs vs. the brute-force reference
# ----------------------------------------------------------------------


def _random_cnf(rng: random.Random, max_vars: int = 10) -> Cnf:
    num_vars = rng.randint(1, max_vars)
    num_clauses = rng.randint(0, 4 * num_vars)
    cnf = Cnf(num_vars)
    for _ in range(num_clauses):
        width = rng.randint(1, min(4, num_vars))
        variables = rng.sample(range(1, num_vars + 1), width)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in variables])
    return cnf


def test_fuzz_solve_against_brute_force() -> None:
    rng = random.Random(0xC0FFEE)
    sat = unsat = 0
    for _ in range(200):
        cnf = _random_cnf(rng)
        expected = brute_force_satisfiable(cnf)
        result = solve_cnf(cnf)
        assert result.satisfiable == expected
        if expected:
            sat += 1
            assert cnf.evaluate(result.model)
        else:
            unsat += 1
    # The generator must exercise both outcomes to mean anything.
    assert sat > 20 and unsat > 20


def test_fuzz_model_enumeration_against_brute_force() -> None:
    rng = random.Random(1234)
    for _ in range(60):
        cnf = _random_cnf(rng, max_vars=8)
        expected = {
            tuple(sorted(model.items()))
            for model in brute_force_models(cnf)
        }
        stats = SolverStats()
        seen = set()
        for model in iter_models(cnf, stats=stats):
            key = tuple(sorted(model.items()))
            assert key not in seen, "iter_models produced a duplicate model"
            seen.add(key)
        assert seen == expected
        # The counters hook observes the enumeration's real work.
        if len(expected) > 1:
            assert stats.decisions > 0


def test_fuzz_projected_enumeration_against_brute_force() -> None:
    rng = random.Random(99)
    for _ in range(60):
        cnf = _random_cnf(rng, max_vars=8)
        projection = sorted(
            rng.sample(
                range(1, cnf.num_vars + 1), rng.randint(1, cnf.num_vars)
            )
        )
        expected = {
            tuple(model[v] for v in projection)
            for model in brute_force_models(cnf)
        }
        models = list(iter_models(cnf, projection=projection))
        # Contract: exactly the projected variables, each class once.
        assert all(sorted(model) == projection for model in models)
        got = {tuple(model[v] for v in projection) for model in models}
        assert len(models) == len(got), "a projection class was repeated"
        assert got == expected


def test_fuzz_assumptions_against_unit_clauses() -> None:
    rng = random.Random(777)
    for _ in range(80):
        cnf = _random_cnf(rng, max_vars=9)
        solver = CdclSolver(cnf)
        for _round in range(3):
            assumptions = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(
                    range(1, cnf.num_vars + 1),
                    rng.randint(0, min(3, cnf.num_vars)),
                )
            ]
            strengthened = Cnf(cnf.num_vars)
            strengthened.add_clauses(list(cnf.clauses))
            for lit in assumptions:
                strengthened.add_clause([lit])
            expected = brute_force_satisfiable(strengthened)
            # The incremental solver must agree and stay reusable.
            assert solver.solve(assumptions=assumptions).satisfiable == expected


# ----------------------------------------------------------------------
# Random relational problems vs. the concrete evaluator
# ----------------------------------------------------------------------


def _powerset(items):
    items = list(items)
    return chain.from_iterable(
        combinations(items, size) for size in range(len(items) + 1)
    )


def _random_formula(rng: random.Random, rel, unary, atoms, depth: int = 0):
    """A random formula over a binary relation ``rel`` and unary ``unary``."""
    leaf_choices = [
        lambda: subset(rel, rel.dot(rel)),
        lambda: acyclic(rel),
        lambda: no(rel & Iden()),
        lambda: some(rel),
        lambda: rel.lone(),
        lambda: rel.one(),
        lambda: subset(
            Literal(TupleSet.pairs([(atoms[0], atoms[-1])])), rel
        ),
        lambda: some(unary),
        lambda: forall("x", unary, lambda x: some(rel.dot(x)) if rng.random() < 0.5 else no(x.dot(rel))),
        lambda: exists("x", Univ(), lambda x: subset(x.product(x), rel)),
    ]
    if depth >= 2:
        return rng.choice(leaf_choices)()
    roll = rng.random()
    if roll < 0.25:
        return _random_formula(rng, rel, unary, atoms, depth + 1).and_(
            _random_formula(rng, rel, unary, atoms, depth + 1)
        )
    if roll < 0.5:
        return _random_formula(rng, rel, unary, atoms, depth + 1).or_(
            _random_formula(rng, rel, unary, atoms, depth + 1)
        )
    if roll < 0.65:
        return _random_formula(rng, rel, unary, atoms, depth + 1).not_()
    return rng.choice(leaf_choices)()


def test_fuzz_translator_against_evaluator() -> None:
    rng = random.Random(0xBEEF)
    for _case in range(25):
        atoms = ["a", "b", "c"]
        pair_universe = [(x, y) for x in atoms for y in atoms]
        upper = rng.sample(pair_universe, rng.randint(1, 5))
        lower = [t for t in upper if rng.random() < 0.3]
        unary_upper = [(x,) for x in rng.sample(atoms, rng.randint(1, 3))]

        def build() -> tuple[Problem, object, object]:
            problem = Problem(atoms)
            rel = problem.declare("r", 2, upper=upper, lower=lower)
            unary = problem.declare("u", 1, upper=unary_upper)
            return problem, rel, unary

        problem, rel, unary = build()
        formula_seed = rng.getrandbits(32)
        formula_rng = random.Random(formula_seed)
        problem.constrain(
            _random_formula(formula_rng, rel, unary, atoms)
        )

        got = set()
        for instance in problem.iter_instances():
            key = (
                frozenset(instance.relation("r").tuples),
                frozenset(instance.relation("u").tuples),
            )
            assert key not in got, "iter_instances repeated an instance"
            got.add(key)
            # Every enumerated instance satisfies the constraints per the
            # independent evaluator.
            for constraint in problem._constraints:
                assert eval_formula(constraint, instance)

        # Exhaustive oracle: evaluate the same constraint over every
        # assignment within bounds.
        expected = set()
        free = [t for t in upper if t not in lower]
        for extra in _powerset(free):
            r_tuples = frozenset(lower) | frozenset(extra)
            for u_tuples in _powerset(unary_upper):
                from repro.relational.instance import Instance

                candidate = Instance(
                    atoms,
                    {
                        "r": TupleSet(2, r_tuples),
                        "u": TupleSet(1, u_tuples),
                    },
                )
                ok = True
                for constraint in problem._constraints:
                    if not eval_formula(constraint, candidate):
                        ok = False
                        break
                if ok:
                    expected.add(
                        (frozenset(r_tuples), frozenset(tuple(u_tuples)))
                    )
        assert got == expected, f"divergence for formula seed {formula_seed}"


def test_fuzz_defined_relations_match_declared_equated() -> None:
    """`Problem.define` (substitution) must be observationally equivalent
    to declaring the relation and constraining it equal."""
    rng = random.Random(4242)
    atoms = ["a", "b", "c"]
    pair_universe = [(x, y) for x in atoms for y in atoms]
    for _case in range(15):
        upper = rng.sample(pair_universe, rng.randint(2, 6))

        defined = Problem(atoms)
        r1 = defined.declare("r", 2, upper=upper)
        d1 = defined.define("d", 2, r1.plus() & Iden())
        defined.constrain(no(d1))

        declared = Problem(atoms)
        r2 = declared.declare("r", 2, upper=upper)
        d2 = declared.declare("d", 2)
        declared.constrain(d2.eq(r2.plus() & Iden()))
        declared.constrain(no(d2))

        via_define = {
            frozenset(i.relation("r").tuples)
            for i in defined.iter_instances()
        }
        via_declare = {
            frozenset(i.relation("r").tuples)
            for i in declared.iter_instances()
        }
        assert via_define == via_declare


def test_define_rejects_cycles_and_duplicates() -> None:
    import pytest

    from repro.errors import RelationalError
    from repro.relational.ast import Rel

    problem = Problem(["a", "b"])
    problem.declare("r", 2)
    with pytest.raises(RelationalError):
        problem.define("r", 2, Rel("r", 2))  # name collision
    problem.define("loop", 2, Rel("loop", 2).dot(Rel("loop", 2)))
    problem.constrain(some(Rel("loop", 2)))
    with pytest.raises(RelationalError):
        problem.solve()  # cyclic definition detected at compile time


# ----------------------------------------------------------------------
# Deep circuits: the iterative Tseitin path
# ----------------------------------------------------------------------


def test_deep_lone_circuit_beyond_recursion_limit() -> None:
    """A `lone` over a wide relation builds a sequential at-most-one chain
    nested far deeper than the recursion limit; the iterative Tseitin
    conversion must compile it without raising RecursionError."""
    atoms = [f"x{i}" for i in range(36)]  # 36*36 = 1296 nested links
    problem = Problem(atoms)
    r = problem.declare("r", 2)
    problem.constrain(r.lone())
    limit = sys.getrecursionlimit()
    instances = list(problem.iter_instances(limit=5))
    assert len(instances) == 5
    seen = set()
    for instance in instances:
        tuples = frozenset(instance.relation("r").tuples)
        assert len(tuples) <= 1  # the lone constraint really holds
        assert tuples not in seen
        seen.add(tuples)
    assert sys.getrecursionlimit() == limit


def test_wide_lone_exact_model_count() -> None:
    """Exhaustive counterpart of the deep test at a tractable size: a
    sequential at-most-one over 144 operands has exactly 145 models."""
    atoms = [f"x{i}" for i in range(12)]
    problem = Problem(atoms)
    r = problem.declare("r", 2)
    problem.constrain(r.lone())
    count = sum(1 for _ in problem.iter_instances())
    assert count == len(atoms) ** 2 + 1  # each singleton, plus empty


def test_deep_closure_chain_reachability() -> None:
    """Transitive closure over a long chain: the closure circuit is deep
    and widely shared; translator and evaluator must agree."""
    n = 24
    atoms = [f"c{i}" for i in range(n)]
    chain_pairs = [(atoms[i], atoms[i + 1]) for i in range(n - 1)]
    problem = Problem(atoms)
    r = problem.declare("r", 2, upper=chain_pairs)
    # The full chain forces end-to-end reachability; anything less does not.
    end_to_end = Literal(TupleSet.pairs([(atoms[0], atoms[-1])]))
    problem.constrain(subset(end_to_end, r.plus()))
    solutions = list(problem.iter_instances())
    assert len(solutions) == 1
    assert solutions[0].relation("r").tuples == frozenset(chain_pairs)
    for instance in solutions:
        for constraint in problem._constraints:
            assert eval_formula(constraint, instance)

"""Tests for the reporting layer (tables, ASCII figures, drivers)."""

from __future__ import annotations

from repro.reporting import (
    fig9_sweep,
    render_fig9a,
    render_fig9b,
    render_log_plot,
    render_series_table,
    render_table,
    tlb_causality_attribution,
)


class TestTables:
    def test_basic_table(self) -> None:
        text = render_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "33" in lines[3]

    def test_title(self) -> None:
        text = render_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_series_table_merges_x_values(self) -> None:
        text = render_series_table(
            {"s1": {4: 1, 5: 2}, "s2": {5: 7}},
            x_label="bound",
        )
        lines = text.splitlines()
        assert "bound" in lines[0]
        row4 = next(line for line in lines if line.startswith("4"))
        assert "-" in row4  # s2 missing at x=4

    def test_series_table_formats_floats(self) -> None:
        text = render_series_table({"t": {1: 0.12345}}, x_label="x")
        assert "0.123" in text


class TestLogPlot:
    def test_plot_contains_markers_and_legend(self) -> None:
        text = render_log_plot(
            {"alpha": {4: 1, 5: 10, 6: 100}},
            title="demo",
            y_label="count",
        )
        assert "o=alpha" in text
        assert "instruction bound" in text
        assert text.count("o") >= 3

    def test_empty_series(self) -> None:
        assert "(no data)" in render_log_plot({}, title="t", y_label="y")

    def test_zero_values_clamped(self) -> None:
        text = render_log_plot({"s": {4: 0}}, title="t", y_label="y")
        assert "s" in text  # no math domain error


class TestFig9Drivers:
    def test_small_sweep_and_renders(self) -> None:
        bounds = {
            "sc_per_loc": 4,
            "rmw_atomicity": 4,
            "causality": 4,
            "invlpg": 4,
            "tlb_causality": 4,
        }
        sweep = fig9_sweep(max_bounds=bounds, time_budget_per_run_s=60)
        counts = sweep.counts()
        assert counts["invlpg"][4] == 1
        assert counts["sc_per_loc"][4] == 5
        text_a = render_fig9a(sweep)
        assert "unique ELT programs" in text_a
        text_b = render_fig9b(sweep)
        assert "runtime" in text_b
        tlb, total = tlb_causality_attribution(sweep)
        assert tlb == 2
        assert total >= 5

    def test_sweep_cache_hit(self) -> None:
        bounds = {
            "sc_per_loc": 4,
            "rmw_atomicity": 4,
            "causality": 4,
            "invlpg": 4,
            "tlb_causality": 4,
        }
        first = fig9_sweep(max_bounds=bounds, time_budget_per_run_s=60)
        second = fig9_sweep(max_bounds=bounds, time_budget_per_run_s=60)
        assert first is second

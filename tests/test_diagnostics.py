"""Tests for violation diagnostics (labeled cycle extraction) and DOT
export."""

from __future__ import annotations

import pytest

from repro.errors import SynthesisError
from repro.litmus.classics import co_rr, rmw_intervene, sb
from repro.litmus.dot import execution_to_dot
from repro.litmus.figures import (
    fig2c_sb_aliased,
    fig10a_ptwalk2,
    fig11_stale_mapping_after_ipi,
)
from repro.models import (
    explain_axiom_violation,
    explain_verdict,
    render_explanations,
    x86t_elt,
)
from repro.mtm import names


class TestCycleExtraction:
    def test_fig11_invlpg_cycle(self) -> None:
        ex = fig11_stale_mapping_after_ipi()
        explanation = explain_axiom_violation(ex.execution, "invlpg")
        assert explanation is not None
        label_sets = {label for e in explanation.edges for label in e.labels}
        # The paper's cycle: remap + ^po + fr_va.
        assert names.REMAP in label_sets
        assert names.FR_VA in label_sets
        assert names.PO in label_sets
        # It is a genuine cycle through the three key events.
        assert explanation.edges[0].source == explanation.edges[-1].target

    def test_ptwalk2_sc_per_loc_cycle_is_two_edges(self) -> None:
        ex = fig10a_ptwalk2()
        explanation = explain_axiom_violation(ex.execution, "sc_per_loc")
        assert explanation is not None
        assert len(explanation.edges) == 2
        labels = {label for e in explanation.edges for label in e.labels}
        assert names.FR in labels
        assert names.PO_LOC in labels

    def test_satisfied_axiom_has_no_cycle(self) -> None:
        ex = fig10a_ptwalk2()
        assert explain_axiom_violation(ex.execution, "causality") is None

    def test_unknown_axiom_raises(self) -> None:
        ex = fig10a_ptwalk2()
        with pytest.raises(SynthesisError):
            explain_axiom_violation(ex.execution, "bogus")

    def test_corr_causality_cycle_uses_rfe(self) -> None:
        explanation = explain_axiom_violation(co_rr().execution, "causality")
        assert explanation is not None
        labels = {label for e in explanation.edges for label in e.labels}
        assert names.RFE in labels


class TestVerdictExplanation:
    def test_explanations_cover_acyclicity_violations(self) -> None:
        model = x86t_elt()
        ex = fig2c_sb_aliased()
        explanations = explain_verdict(ex.execution, model)
        axioms = {e.axiom for e in explanations}
        assert "sc_per_loc" in axioms

    def test_rmw_violation_reported_as_non_acyclicity(self) -> None:
        model = x86t_elt()
        text = render_explanations(rmw_intervene().execution, model)
        assert "rmw_atomicity: violated (non-acyclicity axiom)" in text

    def test_permitted_execution(self) -> None:
        model = x86t_elt()
        text = render_explanations(sb().execution, model)
        assert "permitted" in text

    def test_render_contains_cycle_chain(self) -> None:
        model = x86t_elt()
        text = render_explanations(
            fig11_stale_mapping_after_ipi().execution, model
        )
        assert "invlpg cycle:" in text
        assert "-[" in text


class TestDotExport:
    def test_dot_structure(self) -> None:
        ex = fig10a_ptwalk2()
        dot = execution_to_dot(ex.execution, name="ptwalk2")
        assert dot.startswith('digraph "ptwalk2"')
        assert "cluster_core0" in dot
        assert "WPTE x -> pa_b" in dot
        assert "Rptw pte(x)" in dot
        assert 'label="po"' in dot
        assert dot.rstrip().endswith("}")

    def test_selected_relations_only(self) -> None:
        ex = fig11_stale_mapping_after_ipi()
        dot = execution_to_dot(ex.execution, relations=[names.FR_VA])
        assert names.FR_VA in dot
        assert '"rf_ptw"' not in dot

    def test_all_figures_export(self) -> None:
        from repro.litmus import ALL_FIGURES

        for make in ALL_FIGURES.values():
            dot = execution_to_dot(make().execution)
            assert dot.count("digraph") == 1

"""The whole-TLB-flush extension (the paper's future-work IPI, §III-B2)."""

from __future__ import annotations

import pytest

from repro.errors import VocabularyError, WellFormednessError
from repro.litmus import parse_elt, serialize_elt
from repro.models import x86t_elt
from repro.mtm import Event, EventKind, Execution, ProgramBuilder, names
from repro.synth import SynthesisConfig, canonical_execution_key, synthesize


class TestVocabulary:
    def test_flush_takes_no_address(self) -> None:
        with pytest.raises(VocabularyError):
            Event("e0", EventKind.TLB_FLUSH, 0, va="x")

    def test_flush_is_support_not_memory(self) -> None:
        flush = Event("e0", EventKind.TLB_FLUSH, 0)
        assert flush.is_support
        assert not flush.is_memory_event

    def test_rejected_in_mcm_mode(self) -> None:
        b = ProgramBuilder(mcm_mode=True)
        c0 = b.thread()
        c0.read("x")
        from repro.mtm import Program

        program = b.build()
        events = dict(program.events)
        events["fl"] = Event("fl", EventKind.TLB_FLUSH, 0)
        with pytest.raises(WellFormednessError):
            Program(
                events=events,
                threads=((*program.threads[0], "fl"),),
                initial_map=program.initial_map,
                mcm_mode=True,
            )


class TestTlbSemantics:
    def test_flush_evicts_every_entry(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        r_x = c0.read("x")
        r_y = c0.read("y")
        c0.tlb_flush()
        r_x2 = c0.read("x")  # must re-walk
        r_y2 = c0.read("y")  # must re-walk
        program = b.build()
        execution = Execution(program)
        rf_ptw = execution.relation(names.RF_PTW)
        walks_of = {}
        for walk, user in rf_ptw:
            walks_of[user] = walk
        assert walks_of[r_x.eid] != walks_of[r_x2.eid]
        assert walks_of[r_y.eid] != walks_of[r_y2.eid]

    def test_hit_after_flush_rejected_by_builder(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        r0 = c0.read("x")
        walk = b.walk_of(r0)
        c0.tlb_flush()
        with pytest.raises(WellFormednessError):
            c0.read("x", walk=walk)

    def test_access_without_rewalk_after_flush_is_illformed(self) -> None:
        from repro.mtm import Program

        events = {
            "r0": Event("r0", EventKind.READ, 0, va="x"),
            "pw0": Event("pw0", EventKind.PT_WALK, 0, va="x"),
            "fl": Event("fl", EventKind.TLB_FLUSH, 0),
            "r1": Event("r1", EventKind.READ, 0, va="x"),
        }
        program = Program(
            events=events,
            threads=(("r0", "fl", "r1"),),
            ghosts={"r0": ("pw0",)},
            initial_map={"x": "pa_a"},
        )
        with pytest.raises(WellFormednessError, match="no TLB entry"):
            Execution(program)

    def test_flush_then_stale_reload_is_permitted(self) -> None:
        # A spurious flush does not change the PTE: the re-walk reads the
        # same (current) mapping, and the outcome is permitted.
        b = ProgramBuilder()
        c0 = b.thread()
        c0.read("x")
        c0.tlb_flush()
        c0.read("x")
        execution = Execution(b.build())
        assert x86t_elt().permits(execution)


class TestFormats:
    def test_roundtrip(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        c0.write("x")
        c0.tlb_flush()
        c0.read("x")
        execution = Execution(b.build())
        parsed = parse_elt(serialize_elt(execution))
        assert canonical_execution_key(parsed) == canonical_execution_key(
            execution
        )
        assert "tlbflush" in serialize_elt(execution)


class TestSynthesisInteraction:
    def test_flush_is_never_load_bearing(self) -> None:
        """A flush is removable in isolation, so no minimal ELT contains
        one: enabling the extension must not change the synthesized suite
        (it only inflates the explored space)."""
        base = synthesize(
            SynthesisConfig(bound=5, model=x86t_elt(), target_axiom="sc_per_loc")
        )
        extended = synthesize(
            SynthesisConfig(
                bound=5,
                model=x86t_elt(),
                target_axiom="sc_per_loc",
                enable_tlb_flush=True,
            )
        )
        assert base.keys() == extended.keys()
        assert (
            extended.stats.programs_enumerated
            >= base.stats.programs_enumerated
        )
        for elt in extended.elts:
            kinds = {e.kind for e in elt.program.events.values()}
            assert EventKind.TLB_FLUSH not in kinds

"""Execution-semantics edge cases beyond the paper figures: multi-remap
aliasing, co_pa validation, dirty-bit forwarding chains, and position
bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import WellFormednessError
from repro.mtm import Execution, ProgramBuilder, names


class TestMultiRemapAliasing:
    def build(self):
        # Two remaps point x and y at the same fresh PA; a write through
        # each VA then hits the same location.
        b = ProgramBuilder()
        b.map("x", "pa_a").map("y", "pa_b")
        c0 = b.thread()
        wpte_x = c0.pte_write("x", "pa_c")
        wpte_y = c0.pte_write("y", "pa_c")
        w1 = c0.write("x")
        w2 = c0.write("y")
        return b, wpte_x, wpte_y, w1, w2

    def test_aliased_writes_need_co(self) -> None:
        b, wpte_x, wpte_y, w1, w2 = self.build()
        program = b.build()
        with pytest.raises(WellFormednessError, match="not total"):
            Execution(
                program,
                rf=[
                    (wpte_x.eid, b.walk_of(w1).eid),
                    (wpte_y.eid, b.walk_of(w2).eid),
                ],
                co_pa=[(wpte_x.eid, wpte_y.eid)],
            )

    def test_full_witness_accepted(self) -> None:
        b, wpte_x, wpte_y, w1, w2 = self.build()
        program = b.build()
        execution = Execution(
            program,
            rf=[
                (wpte_x.eid, b.walk_of(w1).eid),
                (wpte_y.eid, b.walk_of(w2).eid),
            ],
            co=[
                (w1.eid, w2.eid),
                # PTE-location coherence: each remap vs the dirty bit of
                # the write translating through it.
                (wpte_x.eid, b.dirty_of(w1).eid),
                (wpte_y.eid, b.dirty_of(w2).eid),
            ],
            co_pa=[(wpte_x.eid, wpte_y.eid)],
        )
        assert execution.pa_of[w1.eid] == "pa_c"
        assert execution.pa_of[w2.eid] == "pa_c"
        # co_pa drives fr_pa: w1 read x's mapping from wpte_x, whose
        # co_pa-successor is wpte_y.
        assert (w1.eid, wpte_y.eid) in execution.relation(names.FR_PA)

    def test_co_pa_requires_same_target(self) -> None:
        b = ProgramBuilder()
        b.map("x", "pa_a").map("y", "pa_b")
        c0 = b.thread()
        wpte_x = c0.pte_write("x", "pa_c")
        wpte_y = c0.pte_write("y", "pa_d")
        program = b.build()
        with pytest.raises(WellFormednessError, match="same PA"):
            Execution(program, co_pa=[(wpte_x.eid, wpte_y.eid)])

    def test_co_pa_cycle_rejected(self) -> None:
        b, wpte_x, wpte_y, w1, w2 = self.build()
        program = b.build()
        with pytest.raises(WellFormednessError, match="cycle"):
            Execution(
                program,
                rf=[
                    (wpte_x.eid, b.walk_of(w1).eid),
                    (wpte_y.eid, b.walk_of(w2).eid),
                ],
                co=[
                    (w1.eid, w2.eid),
                    (wpte_x.eid, b.dirty_of(w1).eid),
                    (wpte_y.eid, b.dirty_of(w2).eid),
                ],
                co_pa=[
                    (wpte_x.eid, wpte_y.eid),
                    (wpte_y.eid, wpte_x.eid),
                ],
            )

    def test_co_pa_must_agree_with_co_on_shared_location(self) -> None:
        # Two remaps of the SAME va to the same target share a PTE
        # location: co and co_pa must order them consistently.
        b = ProgramBuilder()
        b.map("x", "pa_a")
        c0 = b.thread()
        wpte1 = c0.pte_write("x", "pa_c")
        wpte2 = c0.pte_write("x", "pa_c")
        program = b.build()
        with pytest.raises(WellFormednessError, match="contradicts"):
            Execution(
                program,
                co=[(wpte1.eid, wpte2.eid)],
                co_pa=[(wpte2.eid, wpte1.eid)],
            )


class TestDirtyBitForwardingChains:
    def test_two_step_chain(self) -> None:
        # W0 misses (initial mapping); W1 re-walks reading W0's dirty bit;
        # R2 re-walks reading W1's dirty bit: mapping forwards twice.
        b = ProgramBuilder()
        b.map("x", "pa_a")
        c0 = b.thread()
        w0 = c0.write("x")
        w1 = c0.write("x")  # capacity re-walk
        r2 = c0.read("x")  # capacity re-walk
        program = b.build()
        wdb0, wdb1 = b.dirty_of(w0), b.dirty_of(w1)
        execution = Execution(
            program,
            rf=[
                (wdb0.eid, b.walk_of(w1).eid),
                (wdb1.eid, b.walk_of(r2).eid),
            ],
            co=[(wdb0.eid, wdb1.eid), (w0.eid, w1.eid)],
        )
        assert execution.pa_of[r2.eid] == "pa_a"
        assert execution.origin_of_walk[b.walk_of(r2).eid] is None

    def test_chain_through_remap_preserves_origin(self) -> None:
        # The walk reads a dirty bit whose parent used a remapped PTE:
        # the origin (and rf_pa) must point at the remap.
        b = ProgramBuilder()
        b.map("x", "pa_a")
        c0 = b.thread()
        wpte = c0.pte_write("x", "pa_b")
        w1 = c0.write("x")
        r2 = c0.read("x")  # capacity re-walk
        program = b.build()
        wdb1 = b.dirty_of(w1)
        execution = Execution(
            program,
            rf=[
                (wpte.eid, b.walk_of(w1).eid),
                (wdb1.eid, b.walk_of(r2).eid),
            ],
            co=[(wpte.eid, wdb1.eid)],
        )
        assert execution.pa_of[r2.eid] == "pa_b"
        assert (wpte.eid, r2.eid) in execution.relation(names.RF_PA)


class TestPositions:
    def test_apo_orders_ghosts_with_parents(self) -> None:
        b = ProgramBuilder()
        b.map("x", "pa_a")
        c0 = b.thread()
        w0 = c0.write("x")
        r1 = c0.read("x", walk=b.walk_of(w0))
        program = b.build()
        execution = Execution(program, rf=[(w0.eid, r1.eid)])
        apo = execution.relation(names.APO)
        walk = b.walk_of(w0)
        # The walk (slot 0) precedes r1 (slot 1) but not its own parent.
        assert (walk.eid, r1.eid) in apo
        assert (walk.eid, w0.eid) not in apo
        assert (w0.eid, walk.eid) not in apo

    def test_po_excludes_ghosts(self) -> None:
        b = ProgramBuilder()
        b.map("x", "pa_a")
        c0 = b.thread()
        w0 = c0.write("x")
        c0.read("x", walk=b.walk_of(w0))
        execution = Execution(b.build(), rf=[])
        po = execution.relation(names.PO)
        for a, b_ in po:
            assert not execution.program.events[a].is_ghost
            assert not execution.program.events[b_].is_ghost

"""The §VI-B comparison experiment as a test: the reconstructed COATCheck
suite classified against a synthesized corpus must reproduce the paper's
arithmetic — 40 tests = 9 unsupported + 9 non-spanning + 22 relevant, with
7 category-1 ELTs matching 4 distinct synthesized programs and 15
category-2 reductions."""

from __future__ import annotations

import pytest

from repro.litmus import Category, classify_test, coatcheck_suite, compare_suite
from repro.models import x86t_elt
from repro.synth import SynthesisConfig, synthesize

CORPUS_BOUNDS = {
    "sc_per_loc": 6,
    "rmw_atomicity": 7,
    "causality": 6,
    "invlpg": 5,
    "tlb_causality": 4,
}


@pytest.fixture(scope="module")
def corpus_keys():
    model = x86t_elt()
    keys = set()
    for axiom, bound in CORPUS_BOUNDS.items():
        result = synthesize(
            SynthesisConfig(bound=bound, model=model, target_axiom=axiom)
        )
        keys |= result.keys()
    return keys


@pytest.fixture(scope="module")
def report(corpus_keys):
    return compare_suite(coatcheck_suite(), corpus_keys, x86t_elt())


class TestSuiteComposition:
    def test_forty_tests(self) -> None:
        assert len(coatcheck_suite()) == 40

    def test_nine_unsupported(self, report) -> None:
        assert report.count(Category.UNSUPPORTED) == 9

    def test_nine_not_spanning(self, report) -> None:
        assert report.count(Category.NOT_SPANNING) == 9

    def test_twenty_two_relevant(self, report) -> None:
        assert report.relevant == 22


class TestCategory1:
    def test_seven_category1(self, report) -> None:
        assert report.count(Category.CATEGORY_1) == 7

    def test_category1_matches_four_programs(self, report) -> None:
        assert len(report.category1_matched_programs()) == 4

    def test_ptwalk2_is_category1(self, report) -> None:
        by_name = {c.name: c for c in report.classifications}
        assert by_name["ptwalk2"].category is Category.CATEGORY_1


class TestCategory2:
    def test_fifteen_category2(self, report) -> None:
        assert report.count(Category.CATEGORY_2) == 15

    def test_nothing_unmatched(self, report) -> None:
        assert report.count(Category.UNMATCHED) == 0

    def test_dirtybit3_is_category2(self, report, corpus_keys) -> None:
        by_name = {c.name: c for c in report.classifications}
        dirtybit3 = by_name["dirtybit3"]
        assert dirtybit3.category is Category.CATEGORY_2
        assert dirtybit3.matched_key in corpus_keys
        assert dirtybit3.removed_events  # a real reduction was found

    def test_dirtybit3_w3_removal_yields_ptwalk2(self, corpus_keys) -> None:
        # §VI-C names one specific reduction: removing {W3} (with its
        # ghosts) from dirtybit3 exposes exactly the ptwalk2 program.  The
        # tool may report a different valid reduction, so check this one
        # directly.
        from repro.litmus.figures import fig10a_ptwalk2, fig10b_dirtybit3
        from repro.mtm import EventKind
        from repro.synth import canonical_program_key, relaxed_program, removal_groups

        example = fig10b_dirtybit3()
        program = example.execution.program
        w3_group = next(
            g for g in removal_groups(program) if example.eid("W3") in g
        )
        kinds = sorted(str(program.events[e].kind) for e in w3_group)
        assert kinds == ["Rptw", "W", "Wdb"]
        reduced = relaxed_program(program, w3_group)
        ptwalk2_key = canonical_program_key(fig10a_ptwalk2().execution.program)
        assert canonical_program_key(reduced) == ptwalk2_key
        assert ptwalk2_key in corpus_keys


class TestClassifierBehavior:
    def test_empty_corpus_leaves_relevant_unmatched(self) -> None:
        suite = coatcheck_suite()
        report = compare_suite(suite, set(), x86t_elt())
        assert report.count(Category.CATEGORY_1) == 0
        assert report.count(Category.CATEGORY_2) == 0
        assert report.count(Category.UNMATCHED) == 22
        # Unsupported/non-spanning classification is corpus-independent.
        assert report.count(Category.UNSUPPORTED) == 9
        assert report.count(Category.NOT_SPANNING) == 9

    def test_read_only_test_is_not_spanning(self, corpus_keys) -> None:
        suite = {t.name: t for t in coatcheck_suite()}
        result = classify_test(suite["ro_share"], corpus_keys, x86t_elt())
        assert result.category is Category.NOT_SPANNING

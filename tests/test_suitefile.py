"""Tests for multi-ELT suite persistence."""

from __future__ import annotations

import pytest

from repro.errors import LitmusFormatError
from repro.litmus import ALL_FIGURES, EltSuite, suite_from_synthesis
from repro.models import x86t_elt
from repro.synth import SynthesisConfig, canonical_execution_key, synthesize


def small_suite() -> EltSuite:
    suite = EltSuite()
    suite.add("ptwalk2", ALL_FIGURES["fig10a"]().execution, {"src": "fig10a"})
    suite.add("ipi", ALL_FIGURES["fig11"]().execution)
    return suite


class TestRoundTrip:
    def test_dumps_loads(self) -> None:
        suite = small_suite()
        loaded = EltSuite.loads(suite.dumps())
        assert loaded.names() == ["ptwalk2", "ipi"]
        for name in loaded.names():
            assert canonical_execution_key(
                loaded.get(name).execution
            ) == canonical_execution_key(suite.get(name).execution)

    def test_meta_preserved(self) -> None:
        loaded = EltSuite.loads(small_suite().dumps())
        assert loaded.get("ptwalk2").meta == {"src": "fig10a"}

    def test_save_load_file(self, tmp_path) -> None:
        path = small_suite().save(tmp_path / "suite.elts")
        loaded = EltSuite.load(path)
        assert len(loaded) == 2

    def test_verdicts_survive(self) -> None:
        model = x86t_elt()
        suite = small_suite()
        loaded = EltSuite.loads(suite.dumps())
        for name in suite.names():
            original = model.check(suite.get(name).execution)
            reloaded = model.check(loaded.get(name).execution)
            assert original.results == reloaded.results


class TestSynthesisPackaging:
    def test_suite_from_synthesis(self) -> None:
        result = synthesize(
            SynthesisConfig(bound=4, model=x86t_elt(), target_axiom="sc_per_loc")
        )
        suite = suite_from_synthesis(result, prefix="scpl4")
        assert len(suite) == result.count
        entry = suite.entries[0]
        assert entry.meta["axiom"] == "sc_per_loc"
        assert entry.meta["bound"] == "4"
        assert "sc_per_loc" in entry.meta["violates"]
        # Full file round-trip.
        loaded = EltSuite.loads(suite.dumps())
        assert loaded.names() == suite.names()


class TestErrors:
    def test_duplicate_name(self) -> None:
        suite = small_suite()
        with pytest.raises(LitmusFormatError):
            suite.add("ptwalk2", ALL_FIGURES["fig10a"]().execution)

    def test_bad_header(self) -> None:
        with pytest.raises(LitmusFormatError):
            EltSuite.loads("not a suite\n")

    def test_missing_endtest(self) -> None:
        text = "eltsuite v1\ntest t\nelt\nmap x pa_a\nthread 0\n  r x miss\n"
        with pytest.raises(LitmusFormatError):
            EltSuite.loads(text)

    def test_unknown_test_name(self) -> None:
        with pytest.raises(LitmusFormatError):
            small_suite().get("nope")

    def test_bad_meta_token(self) -> None:
        text = (
            "eltsuite v1\ntest t\nmeta oops\nelt\nmap x pa_a\n"
            "thread 0\n  r x miss\nendtest\n"
        )
        with pytest.raises(LitmusFormatError):
            EltSuite.loads(text)

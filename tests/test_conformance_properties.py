"""Metamorphic properties of model comparison and the diff pipeline.

Quantified over whole well-formed transistency programs (and their
candidate executions) drawn from :mod:`tests.strategies`:

* comparing any model against itself is an equivalence on every input;
* the Agreement buckets partition the input (counts sum to input size);
* swapping a pair transposes the asymmetric buckets (antisymmetry);
* the shared-axiom :class:`~repro.models.PairClassifier` agrees with two
  independent :meth:`~repro.models.MemoryModel.permits` calls.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.models import (
    Agreement,
    PairClassifier,
    compare_models,
    x86t_amd_bug,
    x86t_elt,
)
from repro.synth import canonical_execution_key

from .strategies import catalog_model_pairs, vm_programs, witness_lists

SETTINGS = dict(max_examples=25, deadline=None)


@settings(**SETTINGS)
@given(pair=catalog_model_pairs(distinct=False), drawn=witness_lists())
def test_compare_model_with_itself_is_equivalent(pair, drawn) -> None:
    model, _ = pair
    _, witnesses = drawn
    comparison = compare_models(model, model, witnesses)
    assert comparison.equivalent_on_inputs
    assert not comparison.discriminating
    assert not comparison.buckets[Agreement.ONLY_SUBJECT_FORBIDS]
    agreed = len(comparison.buckets[Agreement.BOTH_PERMIT]) + len(
        comparison.buckets[Agreement.BOTH_FORBID]
    )
    assert agreed == len(witnesses)


@settings(**SETTINGS)
@given(pair=catalog_model_pairs(), drawn=witness_lists())
def test_bucket_counts_sum_to_input_size(pair, drawn) -> None:
    reference, subject = pair
    _, witnesses = drawn
    comparison = compare_models(reference, subject, witnesses)
    assert sum(comparison.counts().values()) == len(witnesses)


@settings(**SETTINGS)
@given(pair=catalog_model_pairs(), drawn=witness_lists())
def test_discriminating_sets_antisymmetric_under_swap(pair, drawn) -> None:
    reference, subject = pair
    _, witnesses = drawn
    forward = compare_models(reference, subject, witnesses)
    backward = compare_models(subject, reference, witnesses)

    def keys(comparison, bucket):
        return sorted(
            canonical_execution_key(e) for e in comparison.buckets[bucket]
        )

    assert keys(forward, Agreement.ONLY_REFERENCE_FORBIDS) == keys(
        backward, Agreement.ONLY_SUBJECT_FORBIDS
    )
    assert keys(forward, Agreement.ONLY_SUBJECT_FORBIDS) == keys(
        backward, Agreement.ONLY_REFERENCE_FORBIDS
    )
    assert keys(forward, Agreement.BOTH_PERMIT) == keys(
        backward, Agreement.BOTH_PERMIT
    )
    assert keys(forward, Agreement.BOTH_FORBID) == keys(
        backward, Agreement.BOTH_FORBID
    )


@settings(**SETTINGS)
@given(pair=catalog_model_pairs(), drawn=witness_lists())
def test_pair_classifier_matches_independent_permits(pair, drawn) -> None:
    reference, subject = pair
    _, witnesses = drawn
    classifier = PairClassifier(reference, subject)
    for execution in witnesses:
        assert classifier.verdicts(execution) == (
            reference.permits(execution),
            subject.permits(execution),
        )


@settings(**SETTINGS)
@given(program=vm_programs())
def test_vm_programs_exercise_translation(program) -> None:
    from repro.mtm import EventKind

    # Program.__post_init__ validated well-formedness at build time; the
    # strategy's promise is that the VM vocabulary is actually exercised.
    assert any(
        e.kind is EventKind.PTE_WRITE for e in program.events.values()
    )
    assert program.size > 0


def test_pair_classifier_shares_catalog_axioms() -> None:
    classifier = PairClassifier(x86t_elt(), x86t_amd_bug())
    # x86t_amd_bug is x86t_elt minus invlpg: all four of its axioms are
    # shared, so the slot list holds exactly x86t_elt's five axioms.
    assert classifier.shared_axiom_count == 4
    assert len(classifier._axioms) == 5

"""Unit tests for the Vocabulary namespace and symbolic vocabulary."""

from __future__ import annotations

import pytest

from repro.errors import VocabularyError
from repro.litmus.figures import fig2b_sb_elt
from repro.mtm import Vocabulary, names, symbolic_vocabulary
from repro.relational import TupleSet
from repro.relational.ast import Rel


class TestConcreteVocabulary:
    def test_strict_requires_all_relations(self) -> None:
        with pytest.raises(VocabularyError):
            Vocabulary({"rf": TupleSet.empty(2)})

    def test_non_strict_partial(self) -> None:
        voc = Vocabulary({"rf": TupleSet.pairs([("a", "b")])}, strict=False)
        assert ("a", "b") in voc.rf

    def test_attribute_access_snake_and_camel(self) -> None:
        execution = fig2b_sb_elt().execution
        voc = Vocabulary(execution.relations)
        assert voc.rf == execution.relation(names.RF)
        assert voc.po_loc == execution.relation(names.PO_LOC)
        # CamelCase registry names are reachable via lowered attributes.
        assert voc.read == execution.relation(names.READ)
        assert voc.memory_event == execution.relation(names.MEMORY)
        assert voc.write_like == execution.relation(names.WRITE_LIKE)

    def test_unknown_attribute(self) -> None:
        execution = fig2b_sb_elt().execution
        voc = Vocabulary(execution.relations)
        with pytest.raises(AttributeError):
            voc.not_a_relation

    def test_names_listing(self) -> None:
        execution = fig2b_sb_elt().execution
        voc = Vocabulary(execution.relations)
        assert set(names.UNARY_SETS) <= set(voc.names)
        assert set(names.BINARY_RELATIONS) <= set(voc.names)


class TestSymbolicVocabulary:
    def test_every_registry_name_is_a_rel(self) -> None:
        voc = symbolic_vocabulary()
        for name in names.UNARY_SETS:
            rel = getattr(voc, name[0].lower() + name[1:], None) or voc._relations[name]
            assert isinstance(rel, Rel)
            assert rel.arity == 1
        for name in names.BINARY_RELATIONS:
            rel = voc._relations[name]
            assert isinstance(rel, Rel)
            assert rel.arity == 2

    def test_axioms_build_formulas(self) -> None:
        from repro.models import axioms

        voc = symbolic_vocabulary()
        for axiom in (
            axioms.sc_per_loc,
            axioms.rmw_atomicity,
            axioms.causality,
            axioms.invlpg,
            axioms.tlb_causality,
            axioms.sc_order,
        ):
            formula = axiom(voc)
            assert not isinstance(formula, bool)

    def test_axioms_evaluate_concretely(self) -> None:
        from repro.models import axioms

        execution = fig2b_sb_elt().execution
        voc = Vocabulary(execution.relations)
        assert axioms.sc_per_loc(voc) is True
        assert axioms.causality(voc) is True

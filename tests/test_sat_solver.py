"""Unit tests for the CDCL SAT solver substrate."""

from __future__ import annotations

import pytest

from repro.errors import CnfError
from repro.sat import (
    CdclSolver,
    Cnf,
    brute_force_count,
    brute_force_satisfiable,
    count_models,
    iter_models,
    luby,
    solve_cnf,
)


def make_cnf(num_vars: int, clauses: list[list[int]]) -> Cnf:
    cnf = Cnf(num_vars)
    cnf.add_clauses(clauses)
    return cnf


class TestCnfContainer:
    def test_new_var_sequence(self) -> None:
        cnf = Cnf()
        assert [cnf.new_var() for _ in range(3)] == [1, 2, 3]
        assert cnf.num_vars == 3

    def test_add_clause_grows_variable_range(self) -> None:
        cnf = Cnf()
        cnf.add_clause([5, -7])
        assert cnf.num_vars == 7

    def test_tautology_dropped(self) -> None:
        cnf = Cnf(2)
        cnf.add_clause([1, -1, 2])
        assert cnf.num_clauses == 0

    def test_duplicate_literals_collapsed(self) -> None:
        cnf = Cnf(1)
        cnf.add_clause([1, 1, 1])
        assert cnf.clauses[0] == (1,)

    def test_zero_literal_rejected(self) -> None:
        cnf = Cnf(1)
        with pytest.raises(CnfError):
            cnf.add_clause([0])

    def test_evaluate(self) -> None:
        cnf = make_cnf(2, [[1, 2], [-1, 2]])
        assert cnf.evaluate({1: True, 2: True})
        assert not cnf.evaluate({1: True, 2: False})

    def test_evaluate_missing_variable(self) -> None:
        cnf = make_cnf(2, [[1, 2]])
        with pytest.raises(CnfError):
            cnf.evaluate({1: False})


class TestBasicSolving:
    def test_empty_formula_is_sat(self) -> None:
        assert solve_cnf(Cnf(0)).satisfiable

    def test_single_unit(self) -> None:
        result = solve_cnf(make_cnf(1, [[1]]))
        assert result.satisfiable
        assert result.model == {1: True}

    def test_contradictory_units(self) -> None:
        assert not solve_cnf(make_cnf(1, [[1], [-1]])).satisfiable

    def test_empty_clause_unsat(self) -> None:
        cnf = Cnf(1)
        cnf.add_clause([])
        assert not solve_cnf(cnf).satisfiable

    def test_simple_implication_chain(self) -> None:
        # 1 -> 2 -> 3 -> 4, with 1 forced.
        cnf = make_cnf(4, [[1], [-1, 2], [-2, 3], [-3, 4]])
        result = solve_cnf(cnf)
        assert result.satisfiable
        assert result.model == {1: True, 2: True, 3: True, 4: True}

    def test_model_satisfies_formula(self) -> None:
        cnf = make_cnf(5, [[1, 2, -3], [-1, 4], [3, -4, 5], [-2, -5], [2, 3]])
        result = solve_cnf(cnf)
        assert result.satisfiable
        assert cnf.evaluate(result.model)

    def test_xor_chain_sat(self) -> None:
        # (a xor b), (b xor c) encoded in CNF; satisfiable.
        cnf = make_cnf(3, [[1, 2], [-1, -2], [2, 3], [-2, -3]])
        result = solve_cnf(cnf)
        assert result.satisfiable
        model = result.model
        assert model[1] != model[2]
        assert model[2] != model[3]

    def test_unsat_xor_cycle(self) -> None:
        # a xor b, b xor c, c xor a is unsatisfiable (odd cycle).
        cnf = make_cnf(
            3, [[1, 2], [-1, -2], [2, 3], [-2, -3], [3, 1], [-3, -1]]
        )
        assert not solve_cnf(cnf).satisfiable


def pigeonhole(holes: int) -> Cnf:
    """PHP(holes+1, holes): holes+1 pigeons in `holes` holes — UNSAT."""
    pigeons = holes + 1
    cnf = Cnf(pigeons * holes)

    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    for pigeon in range(pigeons):
        cnf.add_clause([var(pigeon, hole) for hole in range(holes)])
    for hole in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var(p1, hole), -var(p2, hole)])
    return cnf


class TestHarderInstances:
    @pytest.mark.parametrize("holes", [1, 2, 3, 4, 5])
    def test_pigeonhole_unsat(self, holes: int) -> None:
        assert not solve_cnf(pigeonhole(holes)).satisfiable

    def test_pigeonhole_sat_when_enough_holes(self) -> None:
        # n pigeons in n holes is satisfiable: reuse encoding with a dummy
        # pigeon removed by forcing it into hole 0 alongside nobody.
        holes = 4
        cnf = Cnf(holes * holes)

        def var(pigeon: int, hole: int) -> int:
            return pigeon * holes + hole + 1

        for pigeon in range(holes):
            cnf.add_clause([var(pigeon, hole) for hole in range(holes)])
        for hole in range(holes):
            for p1 in range(holes):
                for p2 in range(p1 + 1, holes):
                    cnf.add_clause([-var(p1, hole), -var(p2, hole)])
        assert solve_cnf(cnf).satisfiable

    def test_learned_clause_stats(self) -> None:
        solver = CdclSolver(pigeonhole(4))
        result = solver.solve()
        assert not result.satisfiable
        assert result.stats.conflicts > 0


class TestAssumptions:
    def test_sat_under_assumption(self) -> None:
        cnf = make_cnf(2, [[1, 2]])
        solver = CdclSolver(cnf)
        result = solver.solve(assumptions=[-1])
        assert result.satisfiable
        assert result.model[2] is True

    def test_unsat_under_assumptions_but_sat_overall(self) -> None:
        cnf = make_cnf(2, [[1, 2]])
        solver = CdclSolver(cnf)
        assert not solver.solve(assumptions=[-1, -2]).satisfiable
        # Solver remains usable and the formula itself is satisfiable.
        assert solver.solve().satisfiable

    def test_assumption_of_forced_literal(self) -> None:
        cnf = make_cnf(2, [[1], [-1, 2]])
        solver = CdclSolver(cnf)
        assert solver.solve(assumptions=[1, 2]).satisfiable
        assert not solver.solve(assumptions=[-2]).satisfiable
        assert solver.solve().satisfiable


class TestEnumeration:
    def test_count_all_models_of_or(self) -> None:
        cnf = make_cnf(2, [[1, 2]])
        assert count_models(cnf) == 3

    def test_projected_enumeration(self) -> None:
        # Variable 3 is free; projecting onto {1, 2} removes its doubling.
        cnf = make_cnf(3, [[1, 2]])
        assert count_models(cnf) == 6
        assert count_models(cnf, projection=[1, 2]) == 3

    def test_limit(self) -> None:
        cnf = make_cnf(3, [])
        models = list(iter_models(cnf, limit=5))
        assert len(models) == 5

    def test_models_are_distinct_and_satisfying(self) -> None:
        cnf = make_cnf(4, [[1, -2], [2, 3, -4]])
        seen = set()
        for model in iter_models(cnf):
            key = tuple(sorted(model.items()))
            assert key not in seen
            seen.add(key)
            assert cnf.evaluate(model)
        assert len(seen) == brute_force_count(cnf)

    def test_enumeration_matches_brute_force_on_unsat(self) -> None:
        cnf = make_cnf(1, [[1], [-1]])
        assert count_models(cnf) == 0
        assert not brute_force_satisfiable(cnf)


class TestLuby:
    def test_prefix(self) -> None:
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i) for i in range(1, 16)] == expected

    def test_values_are_powers_of_two(self) -> None:
        for i in range(1, 200):
            value = luby(i)
            assert value & (value - 1) == 0

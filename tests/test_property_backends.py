"""Property-based cross-validation of independent implementations:

* the explicit witness enumerator vs the SAT (Alloy-port) backend;
* concrete axiom evaluation vs the compiled relational formula;
* the text serializer vs its parser (round-trip);
* canonical keys vs structural renamings.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.litmus import parse_elt, serialize_elt
from repro.models import x86t_elt
from repro.synth import canonical_execution_key, enumerate_witnesses
from repro.synth.sat_backend import enumerate_witnesses_sat

from .strategies import executions, programs


@given(programs(max_events=5))
@settings(max_examples=15, deadline=None)
def test_sat_backend_agrees_with_explicit_enumerator(program) -> None:
    def project(execution):
        return (frozenset(execution._rf), frozenset(execution.co))

    explicit = {project(e) for e in enumerate_witnesses(program)}
    via_sat = {project(e) for e in enumerate_witnesses_sat(program)}
    assert explicit == via_sat


@given(executions(max_events=6))
@settings(max_examples=15, deadline=None)
def test_symbolic_check_agrees_with_concrete(execution) -> None:
    model = x86t_elt()
    assert model.check_symbolic(execution) == model.permits(execution)


@given(executions(max_events=8))
@settings(max_examples=40, deadline=None)
def test_serialize_parse_roundtrip(execution) -> None:
    parsed = parse_elt(serialize_elt(execution))
    assert canonical_execution_key(parsed) == canonical_execution_key(execution)


@given(executions(max_events=8))
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_verdict(execution) -> None:
    model = x86t_elt()
    parsed = parse_elt(serialize_elt(execution))
    assert model.check(parsed).results == model.check(execution).results

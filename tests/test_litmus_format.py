"""Tests for ELT text formats: rendering and round-trip parsing."""

from __future__ import annotations

import pytest

from repro.errors import LitmusFormatError
from repro.litmus import (
    ALL_CLASSICS,
    ALL_FIGURES,
    format_execution,
    format_program,
    parse_elt,
    serialize_elt,
)
from repro.mtm import Execution, names


def roundtrip(execution: Execution) -> Execution:
    return parse_elt(serialize_elt(execution))


def assert_equivalent(a: Execution, b: Execution) -> None:
    from repro.synth import canonical_execution_key

    assert canonical_execution_key(a) == canonical_execution_key(b)


class TestRendering:
    def test_format_program_mentions_all_instructions(self) -> None:
        example = ALL_FIGURES["fig10a"]()
        text = format_program(example.execution.program)
        assert "WPTE x -> pa_b" in text
        assert "INVLPG x" in text
        assert "R x" in text
        assert "Rptw pte(x)" in text

    def test_format_execution_lists_witness(self) -> None:
        example = ALL_FIGURES["fig2b"]()
        text = format_execution(example.execution)
        assert "witness:" in text
        assert "rf:" in text
        assert "reads:" in text

    def test_remap_annotated(self) -> None:
        example = ALL_FIGURES["fig11"]()
        text = format_program(example.execution.program)
        assert "remap of" in text


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(ALL_FIGURES))
    def test_figures_roundtrip(self, name: str) -> None:
        execution = ALL_FIGURES[name]().execution
        assert_equivalent(execution, roundtrip(execution))

    @pytest.mark.parametrize("name", sorted(ALL_CLASSICS))
    def test_classics_roundtrip(self, name: str) -> None:
        execution = ALL_CLASSICS[name]().execution
        assert_equivalent(execution, roundtrip(execution))

    def test_roundtrip_preserves_verdict(self) -> None:
        from repro.models import x86t_elt

        model = x86t_elt()
        for name in ("fig10a", "fig11", "fig2b", "fig2c"):
            original = ALL_FIGURES[name]().execution
            parsed = roundtrip(original)
            assert model.check(parsed).violated == model.check(original).violated

    def test_roundtrip_preserves_relations(self) -> None:
        original = ALL_FIGURES["fig6d"]().execution
        parsed = roundtrip(original)
        for relation in (names.RF_PA, names.FR_VA, names.REMAP):
            assert len(parsed.relation(relation)) == len(
                original.relation(relation)
            )


class TestParserErrors:
    def test_missing_header(self) -> None:
        with pytest.raises(LitmusFormatError):
            parse_elt("thread 0\n  r x miss\n")

    def test_unknown_line(self) -> None:
        with pytest.raises(LitmusFormatError):
            parse_elt("elt\nfrobnicate\n")

    def test_instruction_before_thread(self) -> None:
        with pytest.raises(LitmusFormatError):
            parse_elt("elt\nr x miss\n")

    def test_bad_ipi_reference(self) -> None:
        with pytest.raises(LitmusFormatError):
            parse_elt("elt\nmap x pa_a\nthread 0\n  ipi 3\n")

    def test_bad_edge_reference(self) -> None:
        text = "elt\nmap x pa_a\nthread 0\n  r x miss\nrf 0.9 0.0\n"
        with pytest.raises(LitmusFormatError):
            parse_elt(text)

    def test_comments_and_blanks_ignored(self) -> None:
        text = (
            "elt\n\n# a comment\nmap x pa_a\nthread 0\n  r x miss\n"
        )
        execution = parse_elt(text)
        assert execution.program.size == 2

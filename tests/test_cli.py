"""Tests for the transform-synth command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main

PTWALK2_ELT = """\
elt
map x pa_a
thread 0
  wpte x pa_b
  ipi 0
  r x miss
"""


class TestSynthesizeCommand:
    def test_invlpg_bound4(self, capsys) -> None:
        assert main(["synthesize", "--bound", "4", "--axiom", "invlpg"]) == 0
        out = capsys.readouterr().out
        assert "1 unique ELTs" in out
        assert "WPTE" in out

    def test_mcm_mode(self, capsys) -> None:
        code = main(
            [
                "synthesize",
                "--bound",
                "2",
                "--axiom",
                "sc_per_loc",
                "--model",
                "x86tso",
                "--mcm",
            ]
        )
        assert code == 0
        assert "3 unique ELTs" in capsys.readouterr().out

    def test_unknown_model_rejected(self) -> None:
        with pytest.raises(SystemExit):
            main(["synthesize", "--bound", "4", "--model", "bogus"])

    def test_symmetry_counters_shown_by_default(self, capsys) -> None:
        assert main(["synthesize", "--bound", "4", "--axiom", "invlpg"]) == 0
        assert "symmetry counter" in capsys.readouterr().out

    def test_no_symmetry_oracle_matches_default(self, capsys, tmp_path) -> None:
        """--no-symmetry hides the counter table and writes identical
        suite bytes (the oracle contract, end to end through the CLI)."""
        default_path = tmp_path / "default.elts"
        oracle_path = tmp_path / "oracle.elts"
        base = ["synthesize", "--bound", "4", "--axiom", "sc_per_loc"]
        assert main(base + ["--save", str(default_path)]) == 0
        assert main(
            base + ["--no-symmetry", "--save", str(oracle_path)]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("symmetry counter") == 1  # default run only
        assert default_path.read_bytes() == oracle_path.read_bytes()


class TestCheckCommand:
    def test_forbidden_elt_exits_nonzero(self, tmp_path, capsys) -> None:
        path = tmp_path / "ptwalk2.elt"
        path.write_text(PTWALK2_ELT)
        code = main(["check", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "forbidden" in out
        assert "invlpg" in out

    def test_permitted_under_buggy_model(self, tmp_path, capsys) -> None:
        path = tmp_path / "ptwalk2.elt"
        path.write_text(PTWALK2_ELT)
        # The AMD-erratum model drops the invlpg axiom but the stale read
        # still violates sc_per_loc, so it stays forbidden...
        code = main(["check", str(path), "--model", "x86t_amd_bug"])
        assert code == 1
        # ...while sequential consistency over user events only (no
        # address-translation axioms beyond coherence) also forbids it via
        # the PTE-location coherence cycle.
        capsys.readouterr()

    def test_permitted_elt_exits_zero(self, tmp_path, capsys) -> None:
        path = tmp_path / "ok.elt"
        path.write_text("elt\nmap x pa_a\nthread 0\n  r x miss\n")
        assert main(["check", str(path)]) == 0
        assert "permitted" in capsys.readouterr().out

    def test_check_explain_prints_cycle(self, tmp_path, capsys) -> None:
        path = tmp_path / "ptwalk2.elt"
        path.write_text(PTWALK2_ELT)
        assert main(["check", str(path), "--explain"]) == 1
        out = capsys.readouterr().out
        assert "invlpg cycle:" in out
        assert "-[" in out


class TestParser:
    def test_requires_subcommand(self) -> None:
        with pytest.raises(SystemExit):
            main([])


class TestOrchestratedSynthesize:
    def test_jobs2_suite_file_is_byte_identical_to_serial(
        self, tmp_path, capsys
    ) -> None:
        serial_path = tmp_path / "serial.elts"
        parallel_path = tmp_path / "parallel.elts"
        base = ["synthesize", "--bound", "4", "--axiom", "sc_per_loc"]
        assert main(base + ["--save", str(serial_path)]) == 0
        assert main(base + ["--jobs", "2", "--save", str(parallel_path)]) == 0
        out = capsys.readouterr().out
        assert "per-shard runtimes" in out
        assert parallel_path.read_bytes() == serial_path.read_bytes()

    def test_cache_dir_enables_reuse(self, tmp_path, capsys) -> None:
        cache = tmp_path / "cache"
        base = [
            "synthesize",
            "--bound",
            "4",
            "--axiom",
            "invlpg",
            "--cache-dir",
            str(cache),
        ]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert "suite_hit=False" in first
        assert main(base + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "suite_hit=True" in second
        assert "1 unique ELTs" in second

    def test_resume_requires_cache_dir(self) -> None:
        with pytest.raises(SystemExit):
            main(["synthesize", "--bound", "4", "--resume"])


class TestResilienceFlags:
    def test_negative_max_retries_rejected(self) -> None:
        with pytest.raises(SystemExit):
            main(["synthesize", "--bound", "4", "--max-retries", "-1"])

    def test_chaos_run_is_byte_identical(self, tmp_path, capsys) -> None:
        # Seed 1 crashes the single inline shard on attempt 1; the
        # default retry budget recovers it, so the bytes must match a
        # fault-free run.
        base = ["synthesize", "--bound", "4", "--axiom", "invlpg"]
        plain, chaotic = tmp_path / "plain.elts", tmp_path / "chaos.elts"
        assert main(base + ["--save", str(plain)]) == 0
        assert main(base + ["--chaos", "1", "--save", str(chaotic)]) == 0
        assert chaotic.read_bytes() == plain.read_bytes()
        assert "DEGRADED" not in capsys.readouterr().out

    def test_exhausted_retries_warn_degraded(self, capsys) -> None:
        # With a zero retry budget the crashing shard is quarantined:
        # the run completes degraded and says so on stderr.
        code = main(
            [
                "synthesize",
                "--bound",
                "4",
                "--axiom",
                "invlpg",
                "--chaos",
                "1",
                "--max-retries",
                "0",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert ", DEGRADED" in captured.out
        assert "WARNING: result is DEGRADED" in captured.err
        assert "s0/1" in captured.err


class TestStoreVerifyCommand:
    def seed_cache(self, cache) -> None:
        assert (
            main(
                [
                    "synthesize",
                    "--bound",
                    "4",
                    "--axiom",
                    "invlpg",
                    "--cache-dir",
                    str(cache),
                ]
            )
            == 0
        )

    def test_clean_store_exits_zero(self, tmp_path, capsys) -> None:
        cache = tmp_path / "cache"
        self.seed_cache(cache)
        capsys.readouterr()
        assert main(["store", "verify", "--cache-dir", str(cache)]) == 0
        assert "0 corrupt" in capsys.readouterr().out

    def test_corruption_found_repaired_and_healed(
        self, tmp_path, capsys
    ) -> None:
        import json

        cache = tmp_path / "cache"
        self.seed_cache(cache)
        payload = sorted((cache / "entries").glob("*.pkl"))[0]
        payload.write_bytes(b"\x00" + payload.read_bytes()[1:])
        capsys.readouterr()

        # Damage found: exit 1, the key named in both renderings.
        assert main(["store", "verify", "--cache-dir", str(cache)]) == 1
        assert payload.stem in capsys.readouterr().out
        assert (
            main(["store", "verify", "--cache-dir", str(cache), "--json"])
            == 1
        )
        report = json.loads(capsys.readouterr().out)
        assert report["corrupt"] == [payload.stem]
        assert not report["clean"]

        # --repair quarantines (still exit 1: damage was found) …
        assert (
            main(["store", "verify", "--cache-dir", str(cache), "--repair"])
            == 1
        )
        assert not payload.exists()
        assert (cache / "quarantine" / payload.name).exists()
        # … after which the store scans clean.
        capsys.readouterr()
        assert main(["store", "verify", "--cache-dir", str(cache)]) == 0

    def test_verify_requires_cache_dir(self) -> None:
        with pytest.raises(SystemExit):
            main(["store", "verify"])

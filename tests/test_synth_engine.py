"""End-to-end tests of the synthesis engine (paper Fig 7 pipeline).

Golden counts at small bounds serve as regressions; structural invariants
(§IV-B criteria) are asserted over every synthesized ELT.
"""

from __future__ import annotations

import pytest

from repro.litmus.figures import fig10a_ptwalk2, fig11_stale_mapping_after_ipi
from repro.models import x86t_elt, x86tso
from repro.mtm import EventKind
from repro.synth import (
    SynthesisConfig,
    canonical_program_key,
    is_minimal,
    synthesize,
    synthesize_sweep,
)


def run(axiom: str, bound: int, **overrides):
    config = SynthesisConfig(
        bound=bound, model=x86t_elt(), target_axiom=axiom, **overrides
    )
    return synthesize(config)


@pytest.fixture(scope="module")
def invlpg4():
    return run("invlpg", 4)


@pytest.fixture(scope="module")
def invlpg5():
    return run("invlpg", 5)


@pytest.fixture(scope="module")
def scperloc4():
    return run("sc_per_loc", 4)


class TestGoldenCounts:
    """Regression pins for per-axiom suite sizes at small bounds."""

    def test_invlpg_bound4_is_exactly_ptwalk2(self, invlpg4) -> None:
        # §VI-C / Fig 10a: ptwalk2 (4 instructions) is the only bound-4
        # member of the invlpg suite and is synthesized verbatim.
        assert invlpg4.count == 1
        synthesized = invlpg4.elts[0]
        expected = canonical_program_key(fig10a_ptwalk2().execution.program)
        assert synthesized.key == expected

    def test_invlpg_bound5_contains_fig11(self, invlpg5) -> None:
        # Fig 11 (5 instructions) is a new TransForm-synthesized ELT.
        expected = canonical_program_key(
            fig11_stale_mapping_after_ipi().execution.program
        )
        assert expected in invlpg5.keys()

    def test_sc_per_loc_bound4(self, scperloc4) -> None:
        assert scperloc4.count == 5

    def test_tlb_causality_bound4(self) -> None:
        assert run("tlb_causality", 4).count == 2

    def test_rmw_atomicity_minimum_bound_is_seven(self) -> None:
        # §VI: per-axiom minimum bounds lie between 4 and 7; the RMW
        # intervening-write test needs RMW(4) + remote W(3) = 7 events.
        assert run("rmw_atomicity", 6).count == 0
        result = run("rmw_atomicity", 7)
        assert result.count == 1
        program = result.elts[0].program
        assert len(program.rmw) == 1

    def test_causality_bound4(self) -> None:
        result = run("causality", 4)
        # The PTE-level coWW (two remaps of one VA, co inverted) is the
        # earliest causality violation expressible with ghosts counted.
        assert result.count >= 1

    def test_suites_grow_monotonically_with_bound(self, invlpg4, invlpg5) -> None:
        assert invlpg4.keys() <= invlpg5.keys()


class TestSynthesizedInvariants:
    """§IV-B spanning-set criteria hold for every output."""

    @pytest.fixture(scope="class")
    def suite(self):
        return run("sc_per_loc", 5)

    def test_every_elt_violates_target(self, suite) -> None:
        model = x86t_elt()
        for elt in suite.elts:
            assert "sc_per_loc" in elt.violated_axioms
            assert not model.axiom("sc_per_loc").holds(elt.execution)

    def test_every_elt_has_a_write(self, suite) -> None:
        for elt in suite.elts:
            assert any(
                e.is_write_like for e in elt.program.events.values()
            )

    def test_every_elt_is_minimal(self, suite) -> None:
        model = x86t_elt()
        for elt in suite.elts:
            assert is_minimal(elt.execution, model)

    def test_keys_are_unique(self, suite) -> None:
        keys = [elt.key for elt in suite.elts]
        assert len(keys) == len(set(keys))

    def test_bound_respected(self, suite) -> None:
        for elt in suite.elts:
            assert elt.program.size <= 5


class TestMcmBaseline:
    """User-level synthesis baseline (§VI-A's reference to [30])."""

    def test_mcm_sc_per_loc_counts(self) -> None:
        counts = {}
        for bound in (2, 3, 4):
            config = SynthesisConfig(
                bound=bound,
                model=x86tso(),
                target_axiom="sc_per_loc",
                mcm_mode=True,
            )
            counts[bound] = synthesize(config).count
        # coWW/coWR/coRW1 at two instructions; coRR and coRW2 join at
        # three; the suite then saturates (paper cites saturation for [30]).
        assert counts == {2: 3, 3: 5, 4: 5}

    def test_mcm_programs_have_no_vm_events(self) -> None:
        config = SynthesisConfig(
            bound=3, model=x86tso(), target_axiom="sc_per_loc", mcm_mode=True
        )
        for elt in synthesize(config).elts:
            kinds = {e.kind for e in elt.program.events.values()}
            assert EventKind.PT_WALK not in kinds
            assert EventKind.PTE_WRITE not in kinds


class TestSweep:
    def test_sweep_collects_per_axiom_series(self) -> None:
        base = SynthesisConfig(bound=5, model=x86t_elt())
        sweep = synthesize_sweep(
            base,
            axioms=["invlpg", "tlb_causality"],
            min_bound=4,
            max_bound=5,
        )
        counts = sweep.counts()
        assert counts["invlpg"][4] == 1
        assert counts["invlpg"][5] >= 1
        assert set(counts) == {"invlpg", "tlb_causality"}

    def test_unique_union_deduplicates_across_suites(self) -> None:
        base = SynthesisConfig(bound=4, model=x86t_elt())
        sweep = synthesize_sweep(
            base,
            axioms=["sc_per_loc", "invlpg"],
            min_bound=4,
            max_bound=4,
        )
        total = sum(p.result.count for p in sweep.points)
        unique = len(sweep.unique_elts())
        # ptwalk2 violates both axioms, so the union is strictly smaller.
        assert unique < total

    def test_time_budget_aborts_cleanly(self) -> None:
        config = SynthesisConfig(
            bound=9,
            model=x86t_elt(),
            target_axiom="sc_per_loc",
            time_budget_s=0.2,
        )
        result = synthesize(config)
        assert result.stats.timed_out
        assert result.stats.runtime_s < 10.0


class TestConfigValidation:
    def test_unknown_axiom_rejected(self) -> None:
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError):
            SynthesisConfig(bound=4, model=x86t_elt(), target_axiom="nope")

    def test_nonpositive_bound_rejected(self) -> None:
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError):
            SynthesisConfig(bound=0, model=x86t_elt())

    def test_mcm_mode_disables_vm_features(self) -> None:
        config = SynthesisConfig(bound=4, model=x86tso(), mcm_mode=True)
        assert not config.enable_pte_writes
        assert not config.enable_spurious_invlpg

"""Tests for relaxations and the minimality criterion (§IV-B)."""

from __future__ import annotations

from repro.litmus.classics import rmw_intervene
from repro.litmus.figures import (
    fig8_non_minimal_mp,
    fig10a_ptwalk2,
    fig11_stale_mapping_after_ipi,
)
from repro.models import x86t_elt
from repro.mtm import EventKind, Execution, ProgramBuilder
from repro.synth import (
    is_minimal,
    relaxation_becomes_permitted,
    relaxed_program,
    removal_groups,
    without_rmw_pair,
)


class TestRemovalGroups:
    def test_ptwalk2_groups(self) -> None:
        ex = fig10a_ptwalk2()
        program = ex.execution.program
        groups = removal_groups(program)
        as_sets = {frozenset(g) for g in groups}
        # Removing R2 drags its walk; removing WPTE0 (or INVLPG1) drags the
        # remap pair.
        assert frozenset({ex.eid("R2"), ex.eid("Rptw2")}) in as_sets
        assert frozenset({ex.eid("WPTE0"), ex.eid("INVLPG1")}) in as_sets
        assert len(as_sets) == 2

    def test_removing_walk_invoker_drags_users(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        r0 = c0.read("x")
        r1 = c0.read("x", walk=b.walk_of(r0))
        program = b.build()
        groups = {frozenset(g) for g in removal_groups(program)}
        # Removing r0 removes its walk, stranding (and removing) r1.
        assert frozenset({r0.eid, b.walk_of(r0).eid, r1.eid}) in groups
        # Removing r1 alone is fine (it only hits the entry).
        assert frozenset({r1.eid}) in groups

    def test_rmw_pair_forms_single_group_via_shared_walk(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        read, write = c0.rmw("x")
        program = b.build()
        groups = {frozenset(g) for g in removal_groups(program)}
        walk = b.walk_of(read).eid
        dirty = b.dirty_of(write).eid
        assert frozenset({read.eid, walk, write.eid, dirty}) in groups
        assert frozenset({write.eid, dirty}) in groups

    def test_spurious_invlpg_removable_alone(self) -> None:
        b = ProgramBuilder()
        c0 = b.thread()
        c0.read("x")
        inv = c0.invlpg("x")
        c0.read("x")
        program = b.build()
        groups = {frozenset(g) for g in removal_groups(program)}
        assert frozenset({inv.eid}) in groups

    def test_remote_invlpg_drags_whole_remap(self) -> None:
        ex = fig11_stale_mapping_after_ipi()
        program = ex.execution.program
        groups = {frozenset(g) for g in removal_groups(program)}
        remap_group = frozenset(
            {ex.eid("WPTE0"), ex.eid("INVLPG1"), ex.eid("INVLPG2")}
        )
        assert remap_group in groups


class TestRelaxedProgram:
    def test_threads_keep_cores(self) -> None:
        ex = fig11_stale_mapping_after_ipi()
        program = ex.execution.program
        group = frozenset({ex.eid("R3"), ex.eid("Rptw3")})
        relaxed = relaxed_program(program, group)
        assert relaxed.num_cores == program.num_cores
        assert ex.eid("R3") not in relaxed.events

    def test_without_rmw_pair(self) -> None:
        example = rmw_intervene()
        program = example.execution.program
        pair = next(iter(program.rmw))
        relaxed = without_rmw_pair(program, pair)
        assert not relaxed.rmw
        assert set(relaxed.events) == set(program.events)


class TestMinimality:
    def test_ptwalk2_is_minimal(self) -> None:
        # §VI-C: ptwalk2 is synthesized verbatim, hence minimal.
        assert is_minimal(fig10a_ptwalk2().execution, x86t_elt())

    def test_fig11_is_minimal(self) -> None:
        assert is_minimal(fig11_stale_mapping_after_ipi().execution, x86t_elt())

    def test_fig8_is_not_minimal(self) -> None:
        # Fig 8 caption: removing W4 leaves the mp cycle intact, so the test
        # fails the minimality criterion and must not be synthesized.
        assert not is_minimal(fig8_non_minimal_mp().execution, x86t_elt())

    def test_fig8_failing_relaxation_is_w4(self) -> None:
        ex = fig8_non_minimal_mp()
        execution = ex.execution
        program = execution.program
        model = x86t_elt()
        w4_group = next(
            g for g in removal_groups(program) if ex.eid("W4") in g
        )
        assert not relaxation_becomes_permitted(execution, model, removed=w4_group)

    def test_rmw_violation_minimal_via_dependency_relaxation(self) -> None:
        # Dropping the rmw dependency legalizes the intervening write.
        example = rmw_intervene()
        model = x86t_elt()
        execution = example.execution
        program = execution.program
        pair = next(iter(program.rmw))
        assert relaxation_becomes_permitted(execution, model, dropped_rmw=pair)

    def test_relaxing_everything_is_trivially_permitted(self) -> None:
        ex = fig10a_ptwalk2()
        program = ex.execution.program
        everything = frozenset(program.events)
        assert relaxation_becomes_permitted(
            ex.execution, x86t_elt(), removed=everything
        )

    def test_minimal_elt_stays_wellformed_under_all_relaxations(self) -> None:
        # Apply every relaxation of a minimal ELT; each relaxed program must
        # still be a valid Program (closure preserves placement rules).
        ex = fig11_stale_mapping_after_ipi()
        program = ex.execution.program
        for group in removal_groups(program):
            relaxed = relaxed_program(program, group)
            for eid, event in relaxed.events.items():
                if event.kind is EventKind.PT_WALK:
                    assert relaxed.parent_of(eid) in relaxed.events

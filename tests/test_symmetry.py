"""Tests for :mod:`repro.symmetry`: group computation on hand-built
programs, witness-orbit pruning exactness, SAT-level lex-leader breaking,
and the symmetry-on vs ``--no-symmetry`` equivalence contracts."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings

from repro.errors import RelationalError
from repro.litmus import suite_from_diff, suite_from_synthesis
from repro.models import x86t_amd_bug, x86t_elt
from repro.mtm import ProgramBuilder
from repro.relational import Problem
from repro.symmetry import (
    program_symmetry,
    prune_weighted,
    witness_orbit,
    witness_relation_permutation,
    witness_sort_key,
)
from repro.synth import (
    SynthesisConfig,
    canonical_program_key,
    enumerate_witnesses,
    synthesize,
)
from repro.synth.canon import identity_program_key
from repro.synth.sat_backend import WitnessProblem, enumerate_witnesses_sat

from .strategies import programs


def asymmetric_program():
    """W x | R y — structurally distinct threads, no automorphisms."""
    b = ProgramBuilder()
    c0, c1 = b.thread(), b.thread()
    c0.write("x")
    c1.read("y")
    return b.build()


def fully_symmetric_program():
    """R x | R x — the two threads are interchangeable."""
    b = ProgramBuilder()
    c0, c1 = b.thread(), b.thread()
    c0.read("x")
    c1.read("x")
    return b.build()


def symmetric_writer_program():
    """W x | W x — interchangeable threads with a non-trivial witness
    space (coherence order over the writes, dirty-bit sources)."""
    b = ProgramBuilder()
    c0, c1 = b.thread(), b.thread()
    c0.write("x")
    c1.write("x")
    return b.build()


def partially_symmetric_program():
    """R x | R x | W x — only the two reader threads are interchangeable."""
    b = ProgramBuilder()
    c0, c1, c2 = b.thread(), b.thread(), b.thread()
    c0.read("x")
    c1.read("x")
    c2.write("x")
    return b.build()


class TestProgramSymmetry:
    def test_asymmetric_program_has_trivial_group(self) -> None:
        sym = program_symmetry(asymmetric_program())
        assert sym.automorphisms == ()
        assert not sym.prunable
        assert sym.canonical_key == canonical_program_key(asymmetric_program())

    def test_fully_symmetric_two_threads(self) -> None:
        program = fully_symmetric_program()
        sym = program_symmetry(program)
        assert len(sym.automorphisms) == 1
        assert sym.prunable
        auto = sym.automorphisms[0]
        # The bijection is a true permutation of all events that maps
        # each thread's events onto the other thread's.
        assert set(auto) == set(auto.values()) == set(program.events)
        for eid, image in auto.items():
            assert program.events[eid].core != program.events[image].core
            assert program.events[eid].kind is program.events[image].kind
        # Identity arrangement already canonical for a symmetric program.
        assert sym.identity_key == sym.canonical_key

    def test_partially_symmetric_three_threads(self) -> None:
        program = partially_symmetric_program()
        sym = program_symmetry(program)
        # Exactly the reader-thread swap; the writer thread is fixed.
        assert len(sym.automorphisms) == 1
        auto = sym.automorphisms[0]
        for eid, image in auto.items():
            if program.events[eid].core == 2:
                assert eid == image

    def test_va_renaming_symmetry_detected(self) -> None:
        # R x | R y: distinct VAs, but the serialization renames by first
        # use, so the threads are interchangeable *up to VA renaming* —
        # and the witness space (no shared location) is too.
        b = ProgramBuilder()
        c0, c1 = b.thread(), b.thread()
        c0.read("x")
        c1.read("y")
        sym = program_symmetry(b.build())
        assert len(sym.automorphisms) == 1

    def test_shared_pa_target_blocks_pruning(self) -> None:
        # Two PTE writes aiming at the same PA open a non-trivial co_pa
        # space; pruning must stand down (the explicit backend's
        # canonical co_pa completion is not automorphism-closed).
        b = ProgramBuilder(initial_map={"x": "pa_x", "y": "pa_y"})
        c0, c1 = b.thread(), b.thread()
        w0 = c0.pte_write("x", "pa_shared")
        w1 = c1.pte_write("y", "pa_shared")
        c1.invlpg_for(w0)
        c0.invlpg_for(w1)
        sym = program_symmetry(b.build())
        assert not sym.co_pa_trivial
        assert not sym.prunable

    def test_identity_key_distinguishes_concrete_arrangements(self) -> None:
        b1 = ProgramBuilder()
        c0, c1 = b1.thread(), b1.thread()
        c0.write("x")
        c1.read("x")
        b2 = ProgramBuilder()
        c0, c1 = b2.thread(), b2.thread()
        c0.read("x")
        c1.write("x")
        p1, p2 = b1.build(), b2.build()
        assert canonical_program_key(p1) == canonical_program_key(p2)
        assert identity_program_key(p1) != identity_program_key(p2)


class TestWitnessOrbits:
    def test_orbit_partition_is_exact(self) -> None:
        """Pruned stream = one representative per orbit, weights summing
        to the full stream, each representative sort-key minimal."""
        program = fully_symmetric_program()
        sym = program_symmetry(program)
        full = list(enumerate_witnesses(program))
        pruned = list(
            prune_weighted(program, sym.automorphisms, iter(full))
        )
        assert sum(weight for _, weight in pruned) == len(full)
        full_keys = {
            witness_sort_key(program, e._rf, e.co, e.co_pa) for e in full
        }
        for execution, weight in pruned:
            size, minimal = witness_orbit(
                program,
                sym.automorphisms,
                execution._rf,
                execution.co,
                execution.co_pa,
            )
            assert minimal and size == weight
            # Every orbit member exists in the full stream.
            for auto in sym.automorphisms:
                image_rf = frozenset(
                    (auto[a], auto[b]) for a, b in execution._rf
                )
                image_co = frozenset(
                    (auto[a], auto[b]) for a, b in execution.co
                )
                assert (
                    witness_sort_key(program, image_rf, image_co, frozenset())
                    in full_keys
                )

    def test_empty_group_is_identity_stream(self) -> None:
        program = asymmetric_program()
        full = list(enumerate_witnesses(program))
        pruned = list(prune_weighted(program, (), iter(full)))
        assert [e for e, _ in pruned] == full
        assert all(weight == 1 for _, weight in pruned)

    @given(programs(max_events=6))
    @settings(max_examples=20, deadline=None)
    def test_weights_reproduce_full_enumeration(self, program) -> None:
        sym = program_symmetry(program)
        if not sym.prunable:
            return
        full = list(enumerate_witnesses(program))
        pruned = list(
            prune_weighted(program, sym.automorphisms, iter(full))
        )
        assert sum(w for _, w in pruned) == len(full)
        assert len(pruned) <= len(full)


class TestLexLeaderBreaking:
    def test_sat_stream_is_the_pruned_stream(self) -> None:
        """With lex-leader clauses, the SAT enumeration yields exactly
        the orbit representatives the decode filter would keep — no
        more (the clauses are exact for the full group) and no fewer
        (they never cut a representative)."""
        program = symmetric_writer_program()
        sym = program_symmetry(program)

        def keys(executions):
            return sorted(
                witness_sort_key(program, e._rf, e.co, e.co_pa)
                for e in executions
            )

        full = list(enumerate_witnesses_sat(program))
        pruned_by_filter = [
            e
            for e, _ in prune_weighted(
                program, sym.automorphisms, iter(full)
            )
        ]
        in_solver = list(enumerate_witnesses_sat(program, symmetry=sym))
        assert keys(in_solver) == keys(pruned_by_filter)
        assert len(in_solver) < len(full)

    def test_symmetry_clause_counter(self) -> None:
        program = symmetric_writer_program()
        sym = program_symmetry(program)
        encoded = WitnessProblem(program, symmetry=sym)
        list(encoded.executions())
        assert encoded.problem.last_symmetry_clauses > 0
        assert (
            encoded.solver_stats.symmetry_clauses
            == encoded.problem.last_symmetry_clauses
        )

    def test_witness_relation_permutation_maps_uppers(self) -> None:
        program = symmetric_writer_program()
        sym = program_symmetry(program)
        auto = sym.automorphisms[0]
        eids = list(program.events)
        uppers = {
            "r": [(a, b) for a in eids for b in eids if a != b],
            "empty": [],
        }
        perm = witness_relation_permutation(auto, uppers)
        assert "empty" not in perm  # empty relations contribute nothing
        mapping = perm["r"]
        assert set(mapping) == set(mapping.values())  # a true permutation
        assert any(edge != image for edge, image in mapping.items())

    def test_add_symmetry_rejects_unknown_relation(self) -> None:
        p = Problem(["a", "b"])
        with pytest.raises(RelationalError):
            p.add_symmetry({"nope": {("a", "b"): ("b", "a")}})

    def test_add_symmetry_rejects_non_permutation(self) -> None:
        p = Problem(["a", "b"])
        p.declare("r", 2)
        with pytest.raises(RelationalError):
            p.add_symmetry({"r": {("a", "b"): ("b", "a"), ("b", "a"): ("b", "a")}})

    def test_add_symmetry_rejects_out_of_bounds(self) -> None:
        p = Problem(["a", "b"])
        p.declare("r", 2, upper=[("a", "b")])
        with pytest.raises(RelationalError):
            p.add_symmetry({"r": {("a", "b"): ("b", "a")}})

    def test_lex_leader_prunes_plain_problem(self) -> None:
        """On a bare relational problem with a swap symmetry, the
        enumeration halves (up to fixed points) and every surviving
        instance is the lex-leader of its orbit."""
        swap = {"r": {("a",): ("b",), ("b",): ("a",)}}
        p2 = Problem(["a", "b"])
        p2.declare("r", 1)
        p2.add_symmetry(swap)
        pruned = [
            frozenset(i.relation("r").tuples) for i in p2.iter_instances()
        ]
        # Orbits: {}, {a,b} are fixed; {a} / {b} collapse to one member.
        assert len(pruned) == 3
        assert frozenset() in pruned and frozenset({("a",), ("b",)}) in pruned


def _suite_digest(axiom: str, bound: int, **kwargs) -> str:
    config = SynthesisConfig(
        bound=bound, model=x86t_elt(), target_axiom=axiom, **kwargs
    )
    result = synthesize(config)
    text = suite_from_synthesis(result, prefix=axiom).dumps()
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class TestOracleEquivalence:
    """``--no-symmetry`` (and the generation-pruning ablation) must be
    byte-identical to the symmetric path, with matching weighted
    counters — the differential contract the whole subsystem rests on.
    (The golden-digest suite additionally pins these bytes across
    backends and solver paths.)"""

    def test_counters_match_oracle(self) -> None:
        on = synthesize(SynthesisConfig(bound=6, target_axiom="sc_per_loc"))
        off = synthesize(
            SynthesisConfig(
                bound=6, target_axiom="sc_per_loc", symmetry=False
            )
        )
        assert on.stats.symmetric_programs > 0  # the knob actually bites
        assert on.stats.orbit_witnesses_pruned > 0
        for name in (
            "programs_enumerated",
            "executions_enumerated",
            "interesting",
            "minimal",
            "unique_programs",
        ):
            assert getattr(on.stats, name) == getattr(off.stats, name), name

    def test_generation_pruning_ablation_replays_orbits(self) -> None:
        """With generation-time arrangement pruning ablated, duplicate
        isomorphic programs reach the pipeline — and the orbit cache
        must skip them before translation while reproducing the default
        path's bytes."""
        default = _suite_digest("invlpg", 5)
        ablated = synthesize(
            SynthesisConfig(
                bound=5, target_axiom="invlpg", canonical_pruning=False
            )
        )
        text = suite_from_synthesis(ablated, prefix="invlpg").dumps()
        assert hashlib.sha256(text.encode("utf-8")).hexdigest() == default
        assert ablated.stats.orbit_replays > 0

    def test_ablation_skips_translations_on_sat_backend(self) -> None:
        from repro.synth import clear_minimality_cache, shared_session_cache

        # The translation count is only meaningful on a cold
        # process-level session cache.
        shared_session_cache().clear()
        clear_minimality_cache()
        ablated = synthesize(
            SynthesisConfig(
                bound=5,
                target_axiom="invlpg",
                canonical_pruning=False,
                witness_backend="sat",
            )
        )
        assert (
            ablated.stats.sat_translations
            == ablated.stats.programs_enumerated - ablated.stats.orbit_replays
        )

    def test_diff_ablation_replays_orbits(self) -> None:
        """With generation pruning ablated, the fused diff pipeline must
        replay duplicate classes from the orbit cache and still produce
        the identical discriminating suite."""
        from repro.conformance import DiffConfig, diff_models

        def cell(**kwargs):
            return diff_models(
                DiffConfig(
                    base=SynthesisConfig(
                        bound=5, model=x86t_elt(), **kwargs
                    ),
                    subject=x86t_amd_bug(),
                )
            )

        default = cell()
        ablated = cell(canonical_pruning=False)
        assert ablated.stats.orbit_replays > 0
        assert suite_from_diff(ablated).dumps() == suite_from_diff(default).dumps()

    @pytest.mark.parametrize("backend", ["explicit", "sat"])
    def test_diff_cells_match_oracle(self, backend) -> None:
        from repro.conformance import DiffConfig, cell_to_json, diff_models

        cells = {}
        for symmetry in (True, False):
            cell = diff_models(
                DiffConfig(
                    base=SynthesisConfig(
                        bound=5,
                        model=x86t_elt(),
                        witness_backend=backend,
                        symmetry=symmetry,
                    ),
                    subject=x86t_amd_bug(),
                )
            )
            payload = cell_to_json(cell)
            payload["stats"].pop("runtime_s")  # wall time is never stable
            cells[symmetry] = (payload, suite_from_diff(cell).dumps())
        assert cells[True] == cells[False]

"""Tests for the SAT-backed relational model finder (Problem)."""

from __future__ import annotations

import pytest

from repro.errors import RelationalError
from repro.relational import (
    Iden,
    Problem,
    TupleSet,
    acyclic,
    conj,
    eval_formula,
    exists,
    forall,
    no,
    some,
    subset,
)


class TestDeclaration:
    def test_duplicate_declaration_rejected(self) -> None:
        problem = Problem(["a"])
        problem.declare("r", 2)
        with pytest.raises(RelationalError):
            problem.declare("r", 2)

    def test_bounds_must_use_known_atoms(self) -> None:
        problem = Problem(["a"])
        with pytest.raises(RelationalError):
            problem.declare("r", 2, upper=[("a", "zz")])

    def test_lower_within_upper(self) -> None:
        problem = Problem(["a", "b"])
        with pytest.raises(RelationalError):
            problem.declare("r", 2, upper=[("a", "a")], lower=[("a", "b")])

    def test_empty_universe_rejected(self) -> None:
        with pytest.raises(RelationalError):
            Problem([])


class TestSolving:
    def test_unconstrained_relation_enumerates_powerset(self) -> None:
        problem = Problem(["a", "b"])
        problem.declare("r", 2)  # 4 potential tuples
        instances = list(problem.iter_instances())
        assert len(instances) == 16

    def test_lower_bound_forces_tuples(self) -> None:
        problem = Problem(["a", "b"])
        problem.declare("r", 2, upper=[("a", "b"), ("b", "a")], lower=[("a", "b")])
        for instance in problem.iter_instances():
            assert ("a", "b") in instance.relation("r")

    def test_no_constraint(self) -> None:
        problem = Problem(["a", "b"])
        r = problem.declare("r", 2)
        problem.constrain(no(r))
        instances = list(problem.iter_instances())
        assert len(instances) == 1
        assert instances[0].relation("r").is_empty()

    def test_some_constraint(self) -> None:
        problem = Problem(["a"])
        r = problem.declare("r", 1)
        problem.constrain(some(r))
        instance = problem.solve()
        assert instance is not None
        assert instance.relation("r").tuples == {("a",)}

    def test_unsat_returns_none(self) -> None:
        problem = Problem(["a"])
        r = problem.declare("r", 1)
        problem.constrain(some(r))
        problem.constrain(no(r))
        assert problem.solve() is None

    def test_acyclic_total_orders_count(self) -> None:
        # Strict total orders over 3 atoms = 3! = 6: acyclic + transitive +
        # totality.
        atoms = ["a", "b", "c"]
        problem = Problem(atoms)
        r = problem.declare("ord", 2)
        problem.constrain(acyclic(r))
        # transitive: ord.ord in ord
        problem.constrain(subset(r.dot(r), r))
        # total: all distinct pairs related one way or the other
        univ_pairs = [
            (x, y) for x in atoms for y in atoms if x != y
        ]
        for x, y in univ_pairs:
            pair = TupleSet.pairs([(x, y)])
            rev = TupleSet.pairs([(y, x)])
            problem.constrain(some((r & pair) + (r & rev)))
        instances = list(problem.iter_instances())
        assert len(instances) == 6
        for instance in instances:
            assert instance.relation("ord").is_total_order_on(atoms)

    def test_quantifiers(self) -> None:
        # every node has an outgoing edge; 2 atoms; count models of r ⊆ 2x2
        # with no empty rows: (2^2-1)^2 = 9
        problem = Problem(["a", "b"])
        r = problem.declare("r", 2)
        from repro.relational import Univ

        problem.constrain(forall("x", Univ(), lambda x: some(x.dot(r))))
        assert len(list(problem.iter_instances())) == 9

    def test_exists_constraint(self) -> None:
        problem = Problem(["a", "b"])
        r = problem.declare("r", 2)
        from repro.relational import Univ

        problem.constrain(exists("x", Univ(), lambda x: some(x.dot(r) & x)))
        for instance in problem.iter_instances():
            rel = instance.relation("r")
            assert any(a == b for a, b in rel)

    def test_one_and_lone(self) -> None:
        problem = Problem(["a", "b", "c"])
        r = problem.declare("r", 1)
        problem.constrain(r.one())
        instances = list(problem.iter_instances())
        assert len(instances) == 3
        for instance in instances:
            assert len(instance.relation("r")) == 1

    def test_transpose_symmetric(self) -> None:
        problem = Problem(["a", "b"])
        r = problem.declare("r", 2)
        problem.constrain(r.eq(r.t()))
        # symmetric relations over 2 atoms: choices for (a,a),(b,b) free and
        # (a,b)<->(b,a) tied: 2*2*2 = 8
        assert len(list(problem.iter_instances())) == 8

    def test_closure_constraint(self) -> None:
        # r is a cycle a->b->c->a; ^r must contain (a, a).
        problem = Problem(["a", "b", "c"])
        cycle = TupleSet.pairs([("a", "b"), ("b", "c"), ("c", "a")])
        r = problem.declare("r", 2, upper=cycle.tuples, lower=cycle.tuples)
        problem.constrain(subset(TupleSet.pairs([("a", "a")]), r.plus()))
        assert problem.solve() is not None

    def test_acyclic_rejects_forced_cycle(self) -> None:
        problem = Problem(["a", "b"])
        cycle = TupleSet.pairs([("a", "b"), ("b", "a")])
        r = problem.declare("r", 2, upper=cycle.tuples, lower=cycle.tuples)
        problem.constrain(acyclic(r))
        assert problem.solve() is None

    def test_solutions_satisfy_formula_via_evaluator(self) -> None:
        problem = Problem(["a", "b", "c"])
        r = problem.declare("r", 2)
        s = problem.declare("s", 2)
        formula = conj(
            [
                acyclic(r),
                subset(s, r.plus()),
                some(s),
            ]
        )
        problem.constrain(formula)
        count = 0
        for instance in problem.iter_instances(limit=40):
            assert eval_formula(formula, instance)
            count += 1
        assert count == 40

    def test_iden_membership(self) -> None:
        problem = Problem(["a", "b"])
        r = problem.declare("r", 2)
        problem.constrain(subset(r, Iden()))
        problem.constrain(some(r))
        for instance in problem.iter_instances():
            for x, y in instance.relation("r"):
                assert x == y

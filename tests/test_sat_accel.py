"""The C-accelerated solver core (`repro.sat._accel` / `AccelCdclSolver`).

Covers the native core's specific risk surface beyond the shared
parametrized suites (which pick up ``accel`` automatically through
``SOLVER_CORES`` whenever the extension is built):

* clean import + clear error when the extension is unbuilt;
* ``auto`` core resolution and ``accel_status()`` reporting;
* zero-copy buffer aliasing — C writes are visible through the same
  Python ``array('i')`` objects, across ``_grow_storage`` and arena
  compaction;
* interrupt/deadline polls crossing the C boundary;
* lockstep equality of model orders and SolverStats counters against
  the pure-Python oracles;
* the build helpers' hardened exit-status contract (both
  ``build_accel`` and the mypyc ``build_compiled``).
"""

from __future__ import annotations

import random
import sys
import time
from array import array
from dataclasses import asdict

import pytest

import repro.sat
import repro.sat.core as core_module
from repro.errors import AccelUnavailableError, SolverInterrupted, SynthesisError
from repro.resilience import deadline_scope
from repro.sat import (
    SOLVER_CORES,
    SOLVER_CORE_NAMES,
    AccelCdclSolver,
    ArrayCdclSolver,
    Cnf,
    ObjectCdclSolver,
    accel_status,
    create_solver,
    default_solver_core,
    resolve_solver_core,
)
from repro.sat import build_accel, core_accel
from repro.sat import solver as solver_module

ACCEL_BUILT = core_accel.accel_available()

needs_accel = pytest.mark.skipif(
    not ACCEL_BUILT, reason="repro.sat._accel extension not built"
)


def pigeonhole(holes: int) -> Cnf:
    pigeons = holes + 1
    cnf = Cnf(pigeons * holes)

    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    for pigeon in range(pigeons):
        cnf.add_clause([var(pigeon, hole) for hole in range(holes)])
    for hole in range(holes):
        for a in range(pigeons):
            for b in range(a + 1, pigeons):
                cnf.add_clause([-var(a, hole), -var(b, hole)])
    return cnf


def random_cnf(num_vars: int, num_clauses: int, seed: int) -> Cnf:
    rng = random.Random(seed)
    cnf = Cnf(num_vars)
    for _ in range(num_clauses):
        chosen = rng.sample(range(1, num_vars + 1), 3)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    return cnf


# ----------------------------------------------------------------------
# Fallback import + core selection
# ----------------------------------------------------------------------


def test_core_accel_imports_without_extension() -> None:
    # The module itself must import cleanly whether or not the
    # extension is built; availability is a queryable fact, not an
    # import-time crash.
    assert isinstance(core_accel.accel_available(), bool)
    assert core_accel.accel_available() == (
        core_accel._accel_module is not None
    )


def test_unbuilt_extension_raises_clear_error(monkeypatch) -> None:
    monkeypatch.setattr(core_accel, "_accel_module", None)
    with pytest.raises(AccelUnavailableError, match="build_accel"):
        AccelCdclSolver(Cnf(1))


def test_unavailable_core_request_raises_clear_error(monkeypatch) -> None:
    monkeypatch.setattr(solver_module, "SOLVER_CORES", ("object", "array"))
    with pytest.raises(AccelUnavailableError, match="build_accel"):
        resolve_solver_core("accel")
    # The config layer reports the same condition as a SynthesisError.
    monkeypatch.setattr(repro.sat, "SOLVER_CORES", ("object", "array"))
    from repro.models import x86t_elt
    from repro.synth import SynthesisConfig

    with pytest.raises(SynthesisError, match="build_accel"):
        SynthesisConfig(bound=4, model=x86t_elt(), solver_core="accel")


def test_unknown_core_still_rejected() -> None:
    with pytest.raises(ValueError, match="unknown solver core"):
        resolve_solver_core("vectorized")


def test_auto_resolves_to_default_core() -> None:
    assert resolve_solver_core("auto") == default_solver_core()
    assert resolve_solver_core(None) == default_solver_core()
    expected = "accel" if ACCEL_BUILT else "array"
    assert default_solver_core() == expected
    solver = create_solver(Cnf(2), core="auto")
    assert isinstance(
        solver, AccelCdclSolver if ACCEL_BUILT else ArrayCdclSolver
    )


def test_solver_cores_lists_accel_only_when_built() -> None:
    assert SOLVER_CORE_NAMES == ("object", "array", "accel")
    assert ("accel" in SOLVER_CORES) == ACCEL_BUILT
    assert set(SOLVER_CORES) <= set(SOLVER_CORE_NAMES)


def test_accel_status_shape() -> None:
    status = accel_status()
    assert set(status) == {
        "available",
        "extension",
        "built_at",
        "default_core",
        "compiled_array_core",
    }
    assert status["available"] == ACCEL_BUILT
    assert status["default_core"] == default_solver_core()
    if ACCEL_BUILT:
        assert status["extension"].startswith("_accel")
        assert status["built_at"] is not None


# ----------------------------------------------------------------------
# Zero-copy buffer aliasing (C and Python share the same memory)
# ----------------------------------------------------------------------


@needs_accel
def test_c_writes_visible_through_python_arrays() -> None:
    cnf = Cnf(3)
    cnf.add_clause([1, 2, 3])
    solver = AccelCdclSolver(cnf)
    values_before = solver._values
    view = memoryview(solver._values)
    assert solver._enqueue(-1, solver._NO_REASON)
    assert solver._enqueue(-2, solver._NO_REASON)
    assert solver._propagate() is None
    # C propagation forced literal 3 true; the *same* array object (and
    # a memoryview exported before the call) show the assignment without
    # any copy-back step.
    assert solver._values is values_before
    assert solver._value(3) is True
    assert view[solver._lit_index(3)] == 1
    assert view[solver._lit_index(-3)] == -1


@needs_accel
def test_conflict_is_reported_as_literal_list() -> None:
    cnf = Cnf(2)
    cnf.add_clause([1, 2])
    solver = AccelCdclSolver(cnf)
    assert solver._enqueue(-1, solver._NO_REASON)
    assert solver._enqueue(-2, solver._NO_REASON)
    conflict = solver._propagate()
    assert sorted(conflict) == [1, 2]
    assert solver.stats.propagations > 0


@needs_accel
def test_aliasing_survives_storage_growth() -> None:
    cnf = Cnf(3)
    cnf.add_clause([1, 2, 3])
    solver = AccelCdclSolver(cnf)
    assert solver.solve().satisfiable
    # Growing the variable range appends to the shared arrays (Python
    # side); the next C call must see the longer buffers.
    solver.add_clause([-4, 5])
    solver.add_clause([4])
    assert isinstance(solver._values, array)
    assert len(solver._values) == 2 * 5 + 2
    result = solver.solve()
    assert result.satisfiable
    assert result.model[5] is True


@needs_accel
def test_aliasing_survives_compaction() -> None:
    solver = AccelCdclSolver(random_cnf(60, 250, seed=11), inprocess=True)
    solver._max_learned = 20  # force DB reductions -> arena compaction
    first = solver.solve()
    assert solver.stats.db_reductions > 0
    assert isinstance(solver._arena, array)
    # Every remapped trail reason must still name a clause containing
    # the implied literal (a dangling cref would surface here).
    for lit in solver._trail:
        var = abs(lit)
        lits = solver._reason_lits(var)
        if lits is not None:
            assert lit in list(lits)
    # The solver stays usable after compaction (second query runs the
    # inprocessing pass over the compacted arena).
    assert solver.solve().satisfiable == first.satisfiable


# ----------------------------------------------------------------------
# Interrupt/deadline polls crossing the C boundary
# ----------------------------------------------------------------------


@needs_accel
def test_deadline_interrupts_accel_solve(monkeypatch) -> None:
    monkeypatch.setattr(core_module, "DEADLINE_POLL_PROPAGATIONS", 1)
    solver = AccelCdclSolver(pigeonhole(4))
    with deadline_scope(time.monotonic() - 1.0):
        with pytest.raises(SolverInterrupted):
            solver.solve()
    # The solver backtracked to level 0 and stays usable: the C-side
    # propagation counter kept advancing, so the poll fired between
    # native calls, not inside one.
    assert not solver.solve().satisfiable


@needs_accel
def test_deadline_interrupts_accel_enumeration(monkeypatch) -> None:
    monkeypatch.setattr(core_module, "DEADLINE_POLL_PROPAGATIONS", 1)
    solver = AccelCdclSolver(random_cnf(12, 20, seed=5))
    models = solver.iter_solutions()
    next(models)
    with deadline_scope(time.monotonic() - 1.0):
        with pytest.raises(SolverInterrupted):
            while True:
                next(models)


# ----------------------------------------------------------------------
# Lockstep with the pure-Python oracles
# ----------------------------------------------------------------------


@needs_accel
@pytest.mark.parametrize("seed", range(8))
def test_lockstep_model_order_and_counters(seed: int) -> None:
    outcomes = []
    for cls in (ObjectCdclSolver, ArrayCdclSolver, AccelCdclSolver):
        solver = cls(random_cnf(40, 160, seed=seed))
        result = solver.solve()
        outcomes.append(
            (result.satisfiable, result.model, asdict(solver.stats))
        )
    assert outcomes[0] == outcomes[1] == outcomes[2]


@needs_accel
@pytest.mark.parametrize("seed", range(4))
def test_lockstep_allsat_enumeration(seed: int) -> None:
    outcomes = []
    for cls in (ObjectCdclSolver, ArrayCdclSolver, AccelCdclSolver):
        solver = cls(random_cnf(12, 24, seed=seed))
        models = [
            tuple(sorted(model.items())) for model in solver.iter_solutions()
        ]
        outcomes.append((models, asdict(solver.stats)))
    assert outcomes[0] == outcomes[1] == outcomes[2]


# ----------------------------------------------------------------------
# build_accel exit-status contract
# ----------------------------------------------------------------------


@needs_accel
def test_build_accel_up_to_date_short_circuit(capsys) -> None:
    assert build_accel.build() == 0
    assert "up to date" in capsys.readouterr().out


def test_build_accel_without_compiler_is_benign(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(
        build_accel, "extension_path", lambda: tmp_path / "_accel.so"
    )
    monkeypatch.setattr(build_accel, "_have_compiler", lambda: False)
    assert build_accel.build() == 0
    out = capsys.readouterr().out
    assert "no C compiler" in out
    assert "pure-Python solver cores remain active" in out


def test_build_accel_compile_failure_is_nonzero(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(
        build_accel, "extension_path", lambda: tmp_path / "_accel.so"
    )
    monkeypatch.setattr(build_accel, "_have_compiler", lambda: True)

    def broken_build(build_dir: str):
        raise RuntimeError("synthetic compiler explosion")

    monkeypatch.setattr(build_accel, "_run_build", broken_build)
    assert build_accel.build() == 1
    err = capsys.readouterr().err
    assert "synthetic compiler explosion" in err
    assert "FAILED" in err


def test_build_accel_clean_removes_artifacts(tmp_path, monkeypatch) -> None:
    fake = tmp_path / "_accel.cpython-311-x86_64-linux-gnu.so"
    fake.write_bytes(b"\x7fELF")
    monkeypatch.setattr(build_accel, "_package_dir", lambda: tmp_path)
    assert build_accel.clean() == 1
    assert not fake.exists()
    assert build_accel.clean() == 0


# ----------------------------------------------------------------------
# build_compiled hardening (mypyc crash vs absent toolchain)
# ----------------------------------------------------------------------


def test_build_compiled_crash_is_nonzero_with_diagnostics(
    monkeypatch, capsys
) -> None:
    from types import ModuleType, SimpleNamespace

    from repro.sat import build_compiled

    # Simulate a *present* toolchain whose compile crashes: the helper
    # must echo the diagnostics and return the failing status, not the
    # benign 0 of the absent-toolchain path.
    monkeypatch.setitem(sys.modules, "mypyc", ModuleType("mypyc"))
    monkeypatch.setattr(
        build_compiled.subprocess,
        "run",
        lambda *args, **kwargs: SimpleNamespace(
            returncode=2,
            stdout="mypyc: internal error\n",
            stderr="Traceback: boom\n",
        ),
    )
    assert build_compiled.build() == 2
    err = capsys.readouterr().err
    assert "mypyc: internal error" in err
    assert "Traceback: boom" in err
    assert "FAILED" in err

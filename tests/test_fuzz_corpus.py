"""The committed fuzz regression corpus (``corpus/``) stays honest.

Three promises are pinned here:

1. **Replay is green** — every committed entry still discriminates
   (reference forbids, subject permits), is still §IV-B minimal, and its
   recorded violated-axiom signature has not drifted.
2. **The corpus is regenerable** — re-running the pinned-seed campaign
   rewrites byte-identical files, so the committed bytes *are* the
   fuzzer's deterministic output, not a hand-curated snapshot.
3. **The fuzzer rediscovers the AMD INVLPG erratum** — a bound-8 random
   campaign shrinks back into the enumerated suite: at least one finding
   class coincides with a discriminator the exact diff pipeline
   synthesizes at bound 5-6.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.conformance import DiffConfig, diff_models
from repro.fuzz import FuzzConfig, replay_corpus, run_fuzz, write_corpus
from repro.litmus.suitefile import EltSuite
from repro.models import x86t_amd_bug, x86t_elt
from repro.synth import SynthesisConfig
from repro.synth.relax import is_minimal

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

#: The campaign that produced the committed corpus (the FuzzConfig
#: defaults, spelled out so a default drift fails loudly here).
PINNED = dict(seed=0, bound=8, rounds=2, attempts_per_round=64)


@pytest.fixture(scope="module")
def pinned_run():
    return run_fuzz(FuzzConfig(**PINNED))


class TestCommittedCorpus:
    def test_corpus_is_committed(self) -> None:
        assert sorted(path.name for path in CORPUS_DIR.glob("*.elts")), (
            "corpus/ must ship at least one .elts regression entry"
        )

    def test_replay_is_green(self) -> None:
        report = replay_corpus(CORPUS_DIR)
        assert report.entries >= 1
        assert report.ok, report.failures

    def test_entries_are_minimal_discriminators(self) -> None:
        reference, subject = x86t_elt(), x86t_amd_bug()
        for path in CORPUS_DIR.glob("*.elts"):
            suite = EltSuite.load(path)
            for entry in suite:
                assert entry.meta["reference"] == reference.name
                assert entry.meta["subject"] == subject.name
                assert reference.forbids(entry.execution)
                assert subject.permits(entry.execution)
                assert is_minimal(entry.execution, reference)
                assert int(entry.meta["bound"]) == entry.execution.program.size

    def test_file_names_are_class_digests(self) -> None:
        for path in CORPUS_DIR.glob("*.elts"):
            suite = EltSuite.load(path)
            (entry,) = list(suite)
            assert entry.meta["class"] == path.stem
            assert entry.name == f"fuzz_{path.stem}"


class TestDeterministicRegeneration:
    def test_pinned_campaign_rewrites_identical_bytes(
        self, pinned_run, tmp_path
    ) -> None:
        regenerated = write_corpus(pinned_run, tmp_path)
        committed = sorted(path.name for path in CORPUS_DIR.glob("*.elts"))
        assert sorted(path.name for path in regenerated) == committed
        for path in regenerated:
            assert path.read_text() == (CORPUS_DIR / path.name).read_text(), (
                f"corpus entry {path.name} drifted; regenerate with "
                "`transform-synth fuzz --seed 0 --corpus corpus`"
            )

    def test_regenerated_corpus_replays_green(
        self, pinned_run, tmp_path
    ) -> None:
        write_corpus(pinned_run, tmp_path)
        report = replay_corpus(tmp_path)
        assert report.entries == len(pinned_run.findings)
        assert report.ok, report.failures


class TestErratumRediscovery:
    def test_bound8_campaign_rediscovers_the_invlpg_erratum(
        self, pinned_run
    ) -> None:
        invlpg_findings = [
            finding
            for finding in pinned_run.findings
            if "invlpg" in finding.violated_axioms
        ]
        assert invlpg_findings, "the pinned campaign must hit the erratum"
        assert any(f.program.size <= 6 for f in invlpg_findings)

    def test_findings_shrink_into_the_enumerated_suite(
        self, pinned_run
    ) -> None:
        """At least one fuzz class coincides with a discriminator the
        exact diff pipeline synthesizes — the fuzzer's random bound-8
        programs shrink back *into* the enumerated bound-5/6 universe."""
        enumerated_keys = set()
        for bound in (5, 6):
            cell = diff_models(
                DiffConfig(
                    base=SynthesisConfig(bound=bound, model=x86t_elt()),
                    subject=x86t_amd_bug(),
                )
            )
            enumerated_keys.update(elt.key for elt in cell.elts)
        fuzz_keys = {finding.canonical_key for finding in pinned_run.findings}
        assert fuzz_keys & enumerated_keys

"""Inprocessing, solver-core selection, and solver bugfix regressions.

Covers the solver-correctness sweep that landed with the inprocessing /
array-core work:

* unit-level inprocessing semantics (subsumption, self-subsumption,
  strengthen-to-unit and -to-binary, every vivification outcome) on
  *both* storage cores through the shared hook API;
* the immunity invariants — blocking clauses (problem clauses) and
  locked clauses (trail reasons) are never touched;
* database reduction under locked learned reasons (the dangling-cref
  regression: a reduction must keep every clause that is a reason on
  the trail, and compaction must remap those references);
* cooperative-deadline re-reads: a deadline scope entered *after* an
  enumeration started must still interrupt it at the next poll;
* ``SolverStats.merge`` exhaustiveness over ``dataclasses.fields``;
* the ``create_solver`` / ``solver_preferences`` construction surface;
* the optional mypyc build's pure-Python fallback.
"""

from __future__ import annotations

import importlib.util
import random
import time
from dataclasses import asdict, fields

import pytest

import repro.sat.core as core_module
from repro.errors import SolverInterrupted, SynthesisError
from repro.resilience import deadline_scope
from repro.sat import (
    MAX_MERGED_STAT_FIELDS,
    SOLVER_CORES,
    ArrayCdclSolver,
    CdclSolver,
    Cnf,
    ObjectCdclSolver,
    SolverStats,
    brute_force_models,
    brute_force_satisfiable,
    create_solver,
    current_solver_preferences,
    solver_preferences,
)
from repro.sat.inprocess import run_inprocessing


def make_cnf(num_vars: int, clauses: list[list[int]] = ()) -> Cnf:
    cnf = Cnf(num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


def pigeonhole(holes: int) -> Cnf:
    pigeons = holes + 1
    cnf = Cnf(pigeons * holes)

    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    for pigeon in range(pigeons):
        cnf.add_clause([var(pigeon, hole) for hole in range(holes)])
    for hole in range(holes):
        for a in range(pigeons):
            for b in range(a + 1, pigeons):
                cnf.add_clause([-var(a, hole), -var(b, hole)])
    return cnf


def learned_lit_sets(solver) -> list[frozenset[int]]:
    return [
        frozenset(solver._inprocess_lits(ref))
        for ref in solver._inprocess_learned()
    ]


# ----------------------------------------------------------------------
# Inprocessing pass semantics (both cores, through the shared hooks)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("core", SOLVER_CORES)
class TestInprocessingPasses:
    def test_subsumption_deletes_the_superset(self, core) -> None:
        solver = create_solver(make_cnf(4), core=core)
        solver._attach_clause([1, 2, 3], learned=True, lbd=2)
        solver._attach_clause([1, 2, 3, 4], learned=True, lbd=3)
        run_inprocessing(solver)
        assert learned_lit_sets(solver) == [frozenset({1, 2, 3})]
        assert solver.stats.subsumed_clauses == 1

    def test_self_subsumption_strengthens(self, core) -> None:
        solver = create_solver(make_cnf(4), core=core)
        solver._attach_clause([1, 2, 3], learned=True, lbd=2)
        solver._attach_clause([-1, 2, 3, 4], learned=True, lbd=3)
        run_inprocessing(solver)
        assert frozenset({2, 3, 4}) in learned_lit_sets(solver)
        assert solver.stats.strengthened_clauses == 1

    def test_strengthen_to_binary_migrates_and_propagates(self, core) -> None:
        solver = create_solver(make_cnf(3), core=core)
        solver._attach_clause([1, 2, 3], learned=True, lbd=2)
        solver._attach_clause([-1, 2, 3], learned=True, lbd=2)
        run_inprocessing(solver)
        # [-1, 2, 3] lost -1 and migrated to the binary watch lists
        # (binary learned clauses are untracked there); the strengthened
        # [2, 3] then subsumes [1, 2, 3], emptying the long learned DB.
        assert learned_lit_sets(solver) == []
        assert solver.stats.strengthened_clauses == 1
        assert solver.stats.subsumed_clauses == 1
        # ... but [2, 3] must still propagate: -2 forces 3.
        result = solver.solve(assumptions=[-2])
        assert result.satisfiable and result.model[3] is True

    def test_vivify_deletes_root_satisfied(self, core) -> None:
        solver = create_solver(make_cnf(4, [[1]]), core=core)
        assert solver.solve().satisfiable  # puts 1 on the root trail
        solver._attach_clause([1, 3, 4], learned=True, lbd=2)
        run_inprocessing(solver)
        assert learned_lit_sets(solver) == []
        assert solver.stats.vivified_clauses == 1

    def test_vivify_drops_root_false_literal(self, core) -> None:
        solver = create_solver(make_cnf(4, [[-1]]), core=core)
        assert solver.solve().satisfiable
        solver._attach_clause([1, 3, 4, 2], learned=True, lbd=3)
        run_inprocessing(solver)
        assert learned_lit_sets(solver) == [frozenset({3, 4, 2})]
        assert solver.stats.vivified_clauses == 1

    def test_vivify_closes_on_implied_true(self, core) -> None:
        solver = create_solver(make_cnf(6, [[3, 4]]), core=core)
        solver._attach_clause([5, 3, 4, 6], learned=True, lbd=3)
        # Probing -5 then -3 propagates 4 via [3, 4]: the clause closes
        # at the implied-true literal, dropping the unreached tail.
        run_inprocessing(solver)
        assert learned_lit_sets(solver) == [frozenset({5, 3, 4})]
        assert solver.stats.vivified_clauses == 1

    def test_vivify_conflict_prefix_becomes_the_clause(self, core) -> None:
        solver = create_solver(
            make_cnf(5, [[1, 2, 3, 4], [1, 2, 3, -4]]), core=core
        )
        solver._attach_clause([1, 2, 3, 5], learned=True, lbd=3)
        # Probing -1, -2, -3 conflicts on the problem clauses: the
        # prefix [1, 2, 3] is itself a clause, strictly shorter.
        run_inprocessing(solver)
        assert learned_lit_sets(solver) == [frozenset({1, 2, 3})]
        assert solver.stats.vivified_clauses == 1

    def test_vivify_unit_prefix_asserts_at_root(self, core) -> None:
        solver = create_solver(make_cnf(3, [[1, 2], [1, -2]]), core=core)
        solver._attach_clause([1, 2, 3], learned=True, lbd=2)
        # Probing -1 conflicts immediately: the clause shrinks to the
        # unit [1], which is enqueued at level 0 and dropped from the DB.
        run_inprocessing(solver)
        assert learned_lit_sets(solver) == []
        assert solver._value(1) is True
        assert solver._level[1] == 0

    def test_blocking_clauses_are_not_learned(self, core) -> None:
        """AllSAT blocking clauses attach as problem clauses; no pass
        may see them."""
        solver = create_solver(make_cnf(4), core=core)
        solver._attach_clause([1, 2, 3, 4])  # a blocking-style clause
        assert learned_lit_sets(solver) == []
        run_inprocessing(solver)
        # Still enforced after the (empty) pass.
        result = solver.solve(assumptions=[-1, -2, -3])
        assert result.satisfiable and result.model[4] is True

    def test_locked_clause_survives_subsumption(self, core) -> None:
        solver = create_solver(make_cnf(3), core=core)
        solver._attach_clause([1, 2, 3], learned=True, lbd=2)
        locked_token = solver._attach_clause([1, 2, 3], learned=True, lbd=2)
        # Make the second copy the reason of a root assignment: locked.
        assert solver._enqueue(3, locked_token)
        run_inprocessing(solver)
        # The duplicate pair collapses to one clause — and it must be
        # the locked one: its reason reference has to stay valid.
        assert learned_lit_sets(solver) == [frozenset({1, 2, 3})]
        assert list(solver._reason_lits(3)) in ([1, 2, 3], [3, 1, 2], [3, 2, 1])
        assert solver.stats.subsumed_clauses == 1

    def test_passes_preserve_solve_loop_enumeration(self, core) -> None:
        """A session-style AllSAT loop (solve, block the model, solve
        again — each solve entry is a query boundary) with aggressive
        inprocessing returns exactly the brute-force model set, with
        passes actually firing on real learned databases."""
        rng = random.Random(0x15A)
        fired = 0
        for _ in range(12):
            num_vars = 9
            cnf = Cnf(num_vars)
            for _clause in range(rng.randint(num_vars, 4 * num_vars)):
                width = rng.randint(1, 3)
                chosen = rng.sample(range(1, num_vars + 1), width)
                cnf.add_clause(
                    [v if rng.random() < 0.5 else -v for v in chosen]
                )
            solver = create_solver(cnf, core=core, inprocess=True)
            solver._inprocess_min_learned = 1
            solver._inprocess_interval = 1
            seen = set()
            while True:
                result = solver.solve()
                if not result.satisfiable:
                    break
                seen.add(tuple(sorted(result.model.items())))
                solver.add_clause(
                    [
                        -var if value else var
                        for var, value in result.model.items()
                    ]
                )
            expected = {
                tuple(sorted(m.items())) for m in brute_force_models(cnf)
            }
            assert seen == expected
            fired += solver.stats.inprocessings
        assert fired > 0, "no inprocessing pass ever ran"

    def test_burst_boundary_triggers_a_due_pass(self, core) -> None:
        """iter_solutions runs a due pass when a unit blocking clause
        brings the search back to level 0 (the enumeration-burst
        boundary), and the enumeration still completes."""
        solver = create_solver(make_cnf(2), core=core, inprocess=True)
        solver._inprocess_min_learned = 0
        solver._inprocess_interval = 0
        models = list(solver.iter_solutions())
        assert len(models) == 4
        assert solver.stats.inprocessings > 0


# ----------------------------------------------------------------------
# Scheduling gates
# ----------------------------------------------------------------------


@pytest.mark.parametrize("core", SOLVER_CORES)
class TestInprocessingScheduling:
    def test_disabled_by_default_for_bare_constructions(self, core) -> None:
        solver = create_solver(make_cnf(2), core=core)
        assert not solver.inprocessing_enabled
        assert not solver.maybe_inprocess()

    def test_gates_min_learned_and_level(self, core) -> None:
        solver = create_solver(make_cnf(3), core=core, inprocess=True)
        solver._inprocess_interval = 0
        assert not solver.maybe_inprocess()  # below the learned floor
        solver._inprocess_min_learned = 1
        solver._attach_clause([1, 2, 3], learned=True, lbd=2)
        solver._trail_lim.append(len(solver._trail))
        assert not solver.maybe_inprocess()  # mid-search: level > 0
        solver._cancel_until(0)
        assert solver.maybe_inprocess()
        assert solver.stats.inprocessings == 1

    def test_interval_throttles_consecutive_passes(self, core) -> None:
        solver = create_solver(make_cnf(3), core=core, inprocess=True)
        solver._inprocess_min_learned = 1
        solver._attach_clause([1, 2, 3], learned=True, lbd=2)
        solver._inprocess_interval = 0
        assert solver.maybe_inprocess()
        solver._inprocess_interval = 100
        assert not solver.maybe_inprocess()  # too few conflicts since


# ----------------------------------------------------------------------
# Locked reasons under database reduction (dangling-reference sweep)
# ----------------------------------------------------------------------


def assert_reason_integrity(solver) -> None:
    """Every trail literal's reason clause must still read back as a
    clause containing that literal with every other literal false —
    exactly what conflict analysis will assume of it."""
    for lit in solver._trail:
        var = lit if lit > 0 else -lit
        reason = solver._reason_lits(var)
        if reason is None:
            continue
        lits = list(reason)
        assert lit in lits
        assert all(
            solver._value(other) is False for other in lits if other != lit
        )


@pytest.mark.parametrize("core", SOLVER_CORES)
def test_reduce_db_keeps_locked_reasons_valid(core) -> None:
    """Force a database reduction at every restart and every solve
    entry: clauses that are reasons of root-level assignments must
    survive (and, in the array core, have their references remapped
    across compaction)."""
    php = pigeonhole(6)
    solver = create_solver(php, core=core)
    solver._max_learned = 0
    assert not solver.solve().satisfiable
    assert solver.stats.db_reductions > 0

    rng = random.Random(0xBEEF)
    for _ in range(25):
        num_vars = rng.randint(4, 9)
        cnf = Cnf(num_vars)
        for _clause in range(rng.randint(num_vars, 4 * num_vars)):
            width = rng.randint(1, min(4, num_vars))
            chosen = rng.sample(range(1, num_vars + 1), width)
            cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
        solver = create_solver(cnf, core=core)
        solver._max_learned = 0
        result = solver.solve()
        assert result.satisfiable == brute_force_satisfiable(cnf)
        assert_reason_integrity(solver)
        seen = {tuple(sorted(m.items())) for m in solver.iter_solutions()}
        expected = {
            tuple(sorted(m.items())) for m in brute_force_models(cnf)
        }
        if result.satisfiable:
            assert seen == expected
        assert_reason_integrity(solver)


# ----------------------------------------------------------------------
# Cooperative-deadline re-reads
# ----------------------------------------------------------------------


@pytest.mark.parametrize("core", SOLVER_CORES)
def test_deadline_installed_mid_enumeration_interrupts(
    core, monkeypatch
) -> None:
    """The solver re-reads the ambient deadline at every poll, so a
    scope entered *after* iter_solutions started must interrupt the
    very next burst — an entry-time snapshot would never see it."""
    monkeypatch.setattr(core_module, "DEADLINE_POLL_PROPAGATIONS", 1)
    solver = create_solver(make_cnf(4), core=core)
    models = solver.iter_solutions()
    assert next(models) is not None  # no deadline active: runs fine
    with deadline_scope(time.monotonic() - 1.0):
        with pytest.raises(SolverInterrupted):
            next(models)
    # The interrupt backtracked to the root: the solver stays usable.
    assert solver.solve().satisfiable


@pytest.mark.parametrize("core", SOLVER_CORES)
def test_expired_deadline_interrupts_solve(core, monkeypatch) -> None:
    monkeypatch.setattr(core_module, "DEADLINE_POLL_PROPAGATIONS", 1)
    solver = create_solver(pigeonhole(4), core=core)
    with deadline_scope(time.monotonic() - 1.0):
        with pytest.raises(SolverInterrupted):
            solver.solve()
    assert not solver.solve().satisfiable


# ----------------------------------------------------------------------
# SolverStats.merge exhaustiveness
# ----------------------------------------------------------------------


def test_solver_stats_merge_covers_every_field() -> None:
    """merge() iterates dataclasses.fields, so a newly added counter is
    aggregated automatically — this pins the policy: every field is
    summed unless listed in MAX_MERGED_STAT_FIELDS, and that list only
    names real fields."""
    names = [f.name for f in fields(SolverStats)]
    assert MAX_MERGED_STAT_FIELDS <= set(names)
    left = SolverStats()
    right = SolverStats()
    for index, name in enumerate(names):
        setattr(left, name, 3 + 2 * index)
        setattr(right, name, 1000 + 3 * index)
    left.merge(right)
    for index, name in enumerate(names):
        a, b = 3 + 2 * index, 1000 + 3 * index
        want = max(a, b) if name in MAX_MERGED_STAT_FIELDS else a + b
        assert getattr(left, name) == want, name


def test_solver_stats_replace_covers_every_field() -> None:
    """Both cores expose identical stats objects; asdict round-trips."""
    stats = SolverStats()
    payload = asdict(stats)
    assert set(payload) == {f.name for f in fields(SolverStats)}


# ----------------------------------------------------------------------
# create_solver / solver_preferences
# ----------------------------------------------------------------------


class TestSolverConstruction:
    def test_bare_cdcl_solver_is_the_historical_object_core(self) -> None:
        solver = CdclSolver(make_cnf(2, [[1, 2]]))
        assert isinstance(solver, ObjectCdclSolver)
        assert not solver.inprocessing_enabled

    def test_create_solver_defaults(self) -> None:
        assert current_solver_preferences() == ("object", False)
        solver = create_solver(make_cnf(2))
        assert isinstance(solver, ObjectCdclSolver)
        assert not solver.inprocessing_enabled

    def test_explicit_knobs_override_ambient(self) -> None:
        with solver_preferences(core="object", inprocess=False):
            solver = create_solver(make_cnf(2), core="array", inprocess=True)
        assert isinstance(solver, ArrayCdclSolver)
        assert solver.inprocessing_enabled

    def test_preferences_scope_and_nest(self) -> None:
        with solver_preferences(core="array", inprocess=True):
            assert current_solver_preferences() == ("array", True)
            assert isinstance(create_solver(make_cnf(1)), ArrayCdclSolver)
            with solver_preferences(core="object"):
                # inprocess=None leaves the ambient value alone.
                assert current_solver_preferences() == ("object", True)
            assert current_solver_preferences() == ("array", True)
        assert current_solver_preferences() == ("object", False)

    def test_preferences_restore_on_error(self) -> None:
        with pytest.raises(RuntimeError):
            with solver_preferences(core="array", inprocess=True):
                raise RuntimeError("boom")
        assert current_solver_preferences() == ("object", False)

    def test_unknown_core_rejected(self) -> None:
        with pytest.raises(ValueError, match="unknown solver core"):
            create_solver(make_cnf(1), core="vectorized")
        with pytest.raises(ValueError, match="unknown solver core"):
            with solver_preferences(core="vectorized"):
                pass  # pragma: no cover - the enter must raise

    def test_synthesis_config_validates_solver_core(self) -> None:
        from repro.models import x86t_elt
        from repro.synth import SynthesisConfig

        with pytest.raises(SynthesisError, match="solver core"):
            SynthesisConfig(
                bound=4,
                model=x86t_elt(),
                target_axiom="sc_per_loc",
                solver_core="vectorized",
            )


# ----------------------------------------------------------------------
# Optional mypyc build: the pure-Python fallback path
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    importlib.util.find_spec("mypyc") is not None,
    reason="mypyc installed: the fallback path is not reachable",
)
def test_build_compiled_falls_back_without_mypyc(capsys) -> None:
    from repro.sat import build_compiled, solver

    assert build_compiled.build() == 0
    assert "pure-Python solver cores remain active" in capsys.readouterr().out
    assert solver.COMPILED_ARRAY_CORE is False


def test_build_compiled_clean_is_idempotent(tmp_path) -> None:
    from repro.sat import build_compiled

    # Nothing was ever built in this tree; clean finds nothing and the
    # pure-Python modules stay importable afterwards.
    assert build_compiled.clean() == 0
    import repro.sat.core_array  # noqa: F401  (still importable)

"""Fuzz pipeline benchmark: deterministic counters, cross-jobs bytes,
and corpus replay cost.

Three workloads:

* ``serial_determinism`` — the pinned-seed campaign (seed 0, bound 8,
  2 rounds x 64 attempts) at ``--jobs 1``.  Every counter in
  :class:`repro.fuzz.FuzzStats` is serial-deterministic, and the suite
  bytes are content-addressed, so ``--check`` gates them *exactly*
  against the committed baseline — any drift in generation, the oracle,
  shrinking, or dedup shows up as a counter or digest mismatch.
* ``jobs_equivalence`` — the same campaign at ``--jobs 2`` and a
  5-way shard split.  The determinism contract says the findings (and
  the suite bytes serialized from them) are byte-identical whatever the
  schedule; the gate compares digests against the serial run.
* ``replay_corpus`` — re-judging the committed regression corpus from
  scratch (the CI regression check); the gate requires a green replay.

Wall times are printed for context and recorded, never gated.

Usage::

    PYTHONPATH=src python benchmarks/bench_fuzz.py --quick --check \
        --baseline benchmarks/baseline_fuzz_quick.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

#: Stats fields gated exactly (all serial-deterministic at --jobs 1).
GATED_COUNTERS = (
    "programs_generated",
    "oracle_calls",
    "oracle_memo_hits",
    "witnesses_classified",
    "discriminating",
    "shrink_steps",
    "shrink_failed",
    "truncated",
    "class_replays",
    "novel_classes",
    "novel_behaviors",
    "findings",
)


def _pinned_config(quick: bool):
    from repro.fuzz import FuzzConfig

    return FuzzConfig(
        seed=0,
        bound=8,
        rounds=2 if quick else 3,
        attempts_per_round=64 if quick else 128,
    )


def _suite_digest(result) -> str:
    from repro.litmus import suite_from_fuzz

    text = suite_from_fuzz(result).dumps()
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def bench_serial_determinism(quick: bool) -> dict:
    from repro.fuzz import run_fuzz

    started = time.monotonic()
    result = run_fuzz(_pinned_config(quick), jobs=1)
    wall_s = time.monotonic() - started
    stats = result.stats.to_json()
    return {
        "wall_s": round(wall_s, 3),
        "counters": {name: stats[name] for name in GATED_COUNTERS},
        "suite_digest": _suite_digest(result),
        "coverage_digest": hashlib.sha256(
            json.dumps(result.coverage.snapshot(), sort_keys=True).encode()
        ).hexdigest(),
        "note": f"{stats['findings']} findings / "
        f"{stats['programs_generated']} programs",
    }


def bench_jobs_equivalence(quick: bool) -> dict:
    from repro.fuzz import run_fuzz

    started = time.monotonic()
    sharded = run_fuzz(_pinned_config(quick), jobs=2)
    jobs2_s = time.monotonic() - started
    fine = run_fuzz(_pinned_config(quick), jobs=2, shard_count=5)
    return {
        "wall_s": round(jobs2_s, 3),
        "jobs2_digest": _suite_digest(sharded),
        "shard5_digest": _suite_digest(fine),
        "findings": len(sharded.findings),
        "degraded": sharded.degraded,
    }


def bench_replay_corpus() -> dict:
    from repro.fuzz import replay_corpus

    started = time.monotonic()
    report = replay_corpus(CORPUS_DIR)
    wall_s = time.monotonic() - started
    return {
        "wall_s": round(wall_s, 3),
        "entries": report.entries,
        "ok": report.ok,
        "failures": len(report.failures),
    }


def run_suite(quick: bool) -> dict:
    results = {}
    print("-- pinned-seed serial campaign ...")
    results["serial_determinism"] = bench_serial_determinism(quick)
    print("-- cross-jobs byte equivalence ...")
    results["jobs_equivalence"] = bench_jobs_equivalence(quick)
    print("-- committed corpus replay ...")
    results["replay_corpus"] = bench_replay_corpus()
    return results


def check_suite(results: dict, baseline: dict) -> list:
    failures = []

    serial = results["serial_determinism"]
    jobs = results["jobs_equivalence"]
    replay = results["replay_corpus"]

    for name, digest in (
        ("jobs2", jobs["jobs2_digest"]),
        ("shard5", jobs["shard5_digest"]),
    ):
        if digest != serial["suite_digest"]:
            failures.append(
                f"{name} suite bytes diverged from the serial run "
                "(cross-jobs determinism contract broken)"
            )
    if jobs["degraded"]:
        failures.append("jobs=2 run degraded without fault injection")
    if replay["entries"] < 1:
        failures.append("committed corpus is empty")
    if not replay["ok"]:
        failures.append(
            f"corpus replay failed {replay['failures']} check(s)"
        )

    base = (baseline or {}).get("workloads", {}).get("serial_determinism")
    if base is None:
        failures.append(
            "no baseline serial_determinism workload to gate against "
            "(pass --baseline benchmarks/baseline_fuzz_quick.json)"
        )
        return failures
    for name in GATED_COUNTERS:
        got = serial["counters"].get(name)
        want = base["counters"].get(name)
        if got != want:
            failures.append(
                f"serial counter {name} drifted: got {got}, baseline {want}"
            )
    if serial["suite_digest"] != base["suite_digest"]:
        failures.append("serial suite digest drifted from the baseline")
    if serial["coverage_digest"] != base["coverage_digest"]:
        failures.append("coverage snapshot digest drifted from the baseline")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI schedule")
    parser.add_argument("--out", default=None, help="write results JSON here")
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON to gate counters/digests against (--check)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate on exact serial counters + digests vs the baseline, "
        "cross-jobs byte identity, and a green corpus replay",
    )
    args = parser.parse_args(argv)

    print(f"fuzz benchmark ({'quick' if args.quick else 'full'} mode)")
    results = run_suite(args.quick)

    document = {
        "meta": {
            "mode": "quick" if args.quick else "full",
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workloads": results,
    }

    status = 0
    if args.check:
        baseline = {}
        if args.baseline:
            baseline = json.loads(Path(args.baseline).read_text())
        failures = check_suite(results, baseline)
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(
                "all fuzz gates passed: exact serial counters, "
                "byte-identical cross-jobs suites, green corpus replay"
            )

    if args.out:
        Path(args.out).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"results written to {args.out}")
    else:
        print(json.dumps(document, indent=2, sort_keys=True))
    return status


if __name__ == "__main__":
    raise SystemExit(main())

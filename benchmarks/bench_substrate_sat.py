"""Substrate benchmark — the CDCL SAT solver (the MiniSat stand-in).

Not a paper figure: engineering baselines for the solver underlying the
relational (Alloy-port) pipeline, kept honest across changes.
"""

from __future__ import annotations

import random

from repro.sat import CdclSolver, Cnf, solve_cnf


def pigeonhole(holes: int) -> Cnf:
    pigeons = holes + 1
    cnf = Cnf(pigeons * holes)

    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    for pigeon in range(pigeons):
        cnf.add_clause([var(pigeon, hole) for hole in range(holes)])
    for hole in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var(p1, hole), -var(p2, hole)])
    return cnf


def random_3sat(num_vars: int, num_clauses: int, seed: int) -> Cnf:
    rng = random.Random(seed)
    cnf = Cnf(num_vars)
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in variables])
    return cnf


def test_pigeonhole_unsat(benchmark) -> None:
    cnf = pigeonhole(6)

    def solve():
        return solve_cnf(cnf)

    result = benchmark(solve)
    assert not result.satisfiable


def test_random_3sat_underconstrained(benchmark) -> None:
    # Clause/variable ratio 2.0: almost surely satisfiable.
    cnf = random_3sat(60, 120, seed=7)

    def solve():
        return CdclSolver(cnf).solve()

    result = benchmark(solve)
    assert result.satisfiable
    assert cnf.evaluate(result.model)


def test_random_3sat_near_threshold(benchmark) -> None:
    # Ratio ~4.26: the hard region (kept small for pure Python).
    cnf = random_3sat(40, 170, seed=11)

    def solve():
        return CdclSolver(cnf).solve()

    benchmark(solve)

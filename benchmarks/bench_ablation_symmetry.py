"""Ablation — generation-time symmetry reduction (canonical pruning).

Fig 9b's discussion credits "symmetry reduction and other optimizations"
with making 10+-instruction synthesis practical.  This ablation disables
the generation-time canonical-thread-order filter: the engine must then
enumerate thread-permuted duplicates (and deduplicate them after the
fact), producing the *same* unique suite at measurably higher cost.
"""

from __future__ import annotations

from repro.models import x86t_elt
from repro.reporting import render_table
from repro.synth import SynthesisConfig, synthesize


def run(bound: int, pruning: bool):
    return synthesize(
        SynthesisConfig(
            bound=bound,
            model=x86t_elt(),
            target_axiom="invlpg",
            max_threads=2,
            canonical_pruning=pruning,
        )
    )


def test_ablation_symmetry_reduction(benchmark, save_report) -> None:
    bound = 6
    with_pruning = benchmark.pedantic(
        run, args=(bound, True), rounds=1, iterations=1
    )
    without_pruning = run(bound, False)

    # Identical output suites...
    assert with_pruning.keys() == without_pruning.keys()
    # ...but strictly less exploration with pruning on.
    assert (
        with_pruning.stats.programs_enumerated
        < without_pruning.stats.programs_enumerated
    )

    rows = [
        (
            "on" if pruning else "off",
            result.stats.programs_enumerated,
            result.stats.executions_enumerated,
            result.count,
            f"{result.stats.runtime_s:.2f}",
        )
        for pruning, result in [(True, with_pruning), (False, without_pruning)]
    ]
    save_report(
        "ablation_symmetry",
        render_table(
            ["canonical pruning", "programs", "executions", "unique ELTs", "runtime (s)"],
            rows,
            title=f"Symmetry-reduction ablation (invlpg suite, bound {bound})",
        ),
    )

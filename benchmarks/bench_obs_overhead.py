"""Observability overhead micro-benchmark: tracing **off** must be free.

Every instrumentation point in the hot path (per-program spans in the
pipeline loop, translate/enumerate spans in the SAT backend, store
get/put spans, registry counter/histogram updates) executes
unconditionally — what makes the disabled path cheap is that it runs
against the shared :data:`repro.obs.NULL_TRACER` /
:data:`repro.obs.NULL_REGISTRY` singletons, whose methods do nothing.

Wall-clock A/B runs of a whole synthesis cannot resolve sub-percent
differences above scheduler noise, so the gate is computed analytically,
and conservatively, from two deterministic measurements:

1. the **per-call cost of every disabled primitive**, measured in a
   tight loop (null span context manager, null begin/end, registry
   lookup + no-op inc/observe) — tens of nanoseconds each;
2. the **number of instrumentation hits** the workload performs,
   counted by running the same workload once under a live tracer and
   registry (span count, histogram observation count, informational
   counter totals are exactly the number of calls).

``overhead = hits x worst-case-per-hit-cost`` is an upper bound on what
the disabled instrumentation can add to the untraced wall time; the
``--check`` gate asserts it stays under 2%% of the measured workload
wall (the ISSUE's zero-overhead budget).  The enabled-path wall time is
reported for information but never gated (collecting real spans is
allowed to cost something).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick --check
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --out after.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

#: The zero-overhead budget: disabled instrumentation must stay under
#: this fraction of the workload's untraced wall time.
OVERHEAD_BUDGET = 0.02


def _reset_caches() -> None:
    from repro.synth import clear_minimality_cache, shared_session_cache

    shared_session_cache().clear()
    clear_minimality_cache()


# ----------------------------------------------------------------------
# Per-call cost of the disabled primitives
# ----------------------------------------------------------------------
def _time_per_call(fn, iterations: int) -> float:
    started = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - started) / iterations


def measure_null_costs(iterations: int) -> dict:
    from repro.obs import NULL_REGISTRY, NULL_TRACER, current_registry, current_tracer

    def span_cm() -> None:
        with NULL_TRACER.span("x", category="bench"):
            pass

    def begin_end() -> None:
        NULL_TRACER.end(NULL_TRACER.begin("x", category="bench"))

    def lookup_and_test() -> None:
        if current_tracer():  # pragma: no cover - never taken
            raise AssertionError
        if current_registry():  # pragma: no cover - never taken
            raise AssertionError

    def registry_ops() -> None:
        NULL_REGISTRY.inc("c", informational=True)
        NULL_REGISTRY.observe("h", 7)

    return {
        "span_cm_s": _time_per_call(span_cm, iterations),
        "begin_end_s": _time_per_call(begin_end, iterations),
        "lookup_s": _time_per_call(lookup_and_test, iterations),
        "registry_ops_s": _time_per_call(registry_ops, iterations),
    }


# ----------------------------------------------------------------------
# Workload: one serial synthesis, untraced wall + instrumented hit count
# ----------------------------------------------------------------------
def run_workload(quick: bool, backend: str) -> dict:
    from repro.models import x86t_elt
    from repro.obs import Observation
    from repro.synth import SynthesisConfig, synthesize

    config = SynthesisConfig(
        bound=5 if quick else 6,
        model=x86t_elt(),
        witness_backend=backend,
    )

    # Untraced wall: best of three runs (the quantity overhead is
    # charged against; min suppresses scheduler noise).
    walls = []
    for _ in range(3):
        _reset_caches()
        started = time.perf_counter()
        result = synthesize(config)
        walls.append(time.perf_counter() - started)
    untraced_wall = min(walls)

    # Instrumented run: spans recorded + registry updates performed are
    # exactly the number of instrumentation hits the disabled path pays
    # a null call for.
    _reset_caches()
    obs = Observation(enabled=True)
    started = time.perf_counter()
    with obs:
        traced = synthesize(config)
    enabled_wall = time.perf_counter() - started
    assert traced.count == result.count

    spans = obs.tracer.span_count
    snapshot = obs.registry.snapshot()
    histogram_observations = sum(
        h["count"] for h in snapshot["histograms"].values()
    )
    informational_incs = sum(
        snapshot["informational"]["counters"].values()
    )
    return {
        "config": {"bound": config.bound, "witness_backend": backend},
        "untraced_wall_s": round(untraced_wall, 6),
        "enabled_wall_s": round(enabled_wall, 6),
        "elts": result.count,
        "hits": {
            "spans": spans,
            "histogram_observations": histogram_observations,
            "informational_incs": informational_incs,
        },
    }


def overhead_estimate(entry: dict, costs: dict) -> dict:
    """Conservative disabled-path overhead: every span site charged the
    *worst* null-span cost plus a tracer/registry lookup; every registry
    update charged a lookup plus the no-op update pair."""
    hits = entry["hits"]
    per_span = max(costs["span_cm_s"], costs["begin_end_s"]) + costs["lookup_s"]
    per_registry_hit = costs["registry_ops_s"] + costs["lookup_s"]
    seconds = hits["spans"] * per_span + (
        hits["histogram_observations"] + hits["informational_incs"]
    ) * per_registry_hit
    ratio = seconds / max(1e-9, entry["untraced_wall_s"])
    return {
        "estimated_overhead_s": round(seconds, 9),
        "estimated_overhead_ratio": round(ratio, 6),
        "budget_ratio": OVERHEAD_BUDGET,
    }


def check(results: dict) -> list:
    from repro.obs import NULL_REGISTRY, NULL_TRACER, NullRegistry, NullTracer

    failures = []
    if not isinstance(NULL_TRACER, NullTracer) or NULL_TRACER:
        failures.append("NULL_TRACER must be a falsy NullTracer singleton")
    if not isinstance(NULL_REGISTRY, NullRegistry) or NULL_REGISTRY:
        failures.append("NULL_REGISTRY must be a falsy NullRegistry singleton")
    for name, entry in results["workloads"].items():
        ratio = entry["overhead"]["estimated_overhead_ratio"]
        if ratio >= OVERHEAD_BUDGET:
            failures.append(
                f"{name}: disabled-instrumentation overhead estimate "
                f"{ratio:.4%} exceeds the {OVERHEAD_BUDGET:.0%} budget"
            )
        if entry["hits"]["spans"] == 0:
            failures.append(f"{name}: instrumentation never engaged")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller bound")
    parser.add_argument("--out", default=None, help="write results JSON here")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail unless estimated disabled overhead < {OVERHEAD_BUDGET:.0%}",
    )
    parser.add_argument(
        "--calibration-iterations",
        type=int,
        default=200_000,
        help="tight-loop iterations for per-call null costs",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

    costs = measure_null_costs(args.calibration_iterations)
    print("disabled primitive costs (per call):")
    for name, value in costs.items():
        print(f"  {name:16s} {value * 1e9:8.1f} ns")

    results: dict = {
        "benchmark": "obs_overhead",
        "quick": args.quick,
        "python": platform.python_version(),
        "null_costs": {k: round(v, 12) for k, v in costs.items()},
        "workloads": {},
    }
    for name, backend in (
        ("synthesize_explicit", "explicit"),
        ("synthesize_sat", "sat"),
    ):
        entry = run_workload(args.quick, backend)
        entry["overhead"] = overhead_estimate(entry, costs)
        results["workloads"][name] = entry
        print(
            f"  {name:20s} wall={entry['untraced_wall_s']:.3f}s "
            f"traced={entry['enabled_wall_s']:.3f}s "
            f"spans={entry['hits']['spans']} "
            f"overhead~{entry['overhead']['estimated_overhead_ratio']:.4%}"
        )

    if args.out:
        Path(args.out).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )
        print(f"results written to {args.out}")

    if args.check:
        failures = check(results)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            f"check passed: disabled overhead under {OVERHEAD_BUDGET:.0%} "
            "on every workload"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Chaos benchmark: the resilience layer under seeded fault injection.

Four workloads, each comparing a fault-injected run against its
fault-free golden artifact:

* ``synthesize_worker_kills`` — every shard hard-exits its worker on
  its first two attempts (``os._exit``, so the pool collapses with
  ``BrokenProcessPool`` and is rebuilt).  At least two workers are
  killed; the retried run must be **byte-identical** to the fault-free
  serial suite.
* ``store_corruption_heals`` — a chaos plan flips one bit in every
  first store write.  The resumed run must quarantine the damage
  (``counters.corrupt``), recompute, and still match the golden bytes.
* ``poison_shard_degrades`` — one shard's crashes outlast the retry
  budget.  The run must finish *degraded*: the failed spec is listed,
  every other shard is merged (a strict, non-empty subset of the
  golden suite).
* ``all_pairs_diff_chaos`` — the fused all-pairs conformance driver
  under worker kills; every per-pair cell must match the fault-free
  matrix exactly.

Wall times are printed for context; ``--check`` gates only on the
deterministic outcomes above (they are seed-reproducible by
construction — a :class:`repro.resilience.FaultPlan` is a pure function
of its seed).

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py --quick --check \
        --out bench-chaos.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path


def _suite_digest(result, prefix: str = "elt") -> str:
    from repro.litmus import suite_from_synthesis

    text = suite_from_synthesis(result, prefix=prefix).dumps()
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _cell_digest(cell) -> str:
    from repro.litmus import suite_from_diff

    text = suite_from_diff(cell).dumps()
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def bench_synthesize_worker_kills(bound: int, seed: int) -> dict:
    from repro.models import x86t_elt
    from repro.orchestrate import run_sharded
    from repro.resilience import FaultPlan, RetryPolicy
    from repro.synth import SynthesisConfig, synthesize

    config = SynthesisConfig(
        bound=bound, model=x86t_elt(), target_axiom="sc_per_loc"
    )
    started = time.monotonic()
    golden = synthesize(config)
    golden_s = time.monotonic() - started

    # crash_attempts=2 < max_attempts, so every shard eventually
    # succeeds; exit-mode crashes kill the worker (and pool) outright.
    plan = FaultPlan(
        seed=seed, crash_rate=1.0, exit_rate=1.0, crash_attempts=2
    )
    started = time.monotonic()
    chaotic = run_sharded(
        config,
        jobs=2,
        shard_count=4,
        retry=RetryPolicy(backoff_base_s=0.0),
        faults=plan,
    )
    chaos_s = time.monotonic() - started
    return {
        "golden": {"wall_s": round(golden_s, 3), "elts": golden.count},
        "chaos": {
            "wall_s": round(chaos_s, 3),
            "pool_rebuilds": chaotic.resilience.pool_rebuilds,
            "retries": chaotic.resilience.retries,
            "degraded": chaotic.degraded,
        },
        "golden_digest": _suite_digest(golden),
        "chaos_digest": _suite_digest(chaotic.result),
    }


def bench_store_corruption_heals(bound: int, seed: int, workdir: Path) -> dict:
    from repro.models import x86t_elt
    from repro.orchestrate import SuiteStore, run_sharded
    from repro.resilience import FaultPlan
    from repro.synth import SynthesisConfig, synthesize

    config = SynthesisConfig(
        bound=bound, model=x86t_elt(), target_axiom="invlpg"
    )
    golden = synthesize(config)

    cache = workdir / "chaos-store"
    corrupting = SuiteStore(
        cache, faults=FaultPlan(seed=seed, store_corrupt_rate=1.0)
    )
    first = run_sharded(config, jobs=1, shard_count=2, store=corrupting)

    started = time.monotonic()
    resumed_store = SuiteStore(cache)
    resumed = run_sharded(config, jobs=1, shard_count=2, store=resumed_store)
    resume_s = time.monotonic() - started
    verify = resumed_store.verify()
    return {
        "first_run_degraded": first.degraded,
        "resume": {
            "wall_s": round(resume_s, 3),
            "quarantined_entries": resumed_store.counters.corrupt,
            "suite_cache_hit": resumed.suite_cache_hit,
        },
        "post_resume_verify_clean": verify.clean,
        "golden_digest": _suite_digest(golden),
        "chaos_digest": _suite_digest(resumed.result),
    }


def bench_poison_shard_degrades(bound: int) -> dict:
    from repro.models import x86t_elt
    from repro.orchestrate import run_sharded
    from repro.resilience import FaultPlan, RetryPolicy
    from repro.synth import SynthesisConfig, synthesize

    config = SynthesisConfig(
        bound=bound, model=x86t_elt(), target_axiom="sc_per_loc"
    )
    golden = synthesize(config)

    # Seed 1 targets exactly s0/4 (see tests/test_resilience.py); its
    # crashes outlast any retry budget.
    plan = FaultPlan(seed=1, crash_rate=0.25, exit_rate=0.0, crash_attempts=99)
    targeted = [f"s{i}/4" for i in range(4) if plan.crashes(f"s{i}/4")]
    started = time.monotonic()
    degraded = run_sharded(
        config,
        jobs=1,
        shard_count=4,
        retry=RetryPolicy(backoff_base_s=0.0),
        faults=plan,
    )
    wall_s = time.monotonic() - started
    return {
        "wall_s": round(wall_s, 3),
        "targeted_shards": targeted,
        "degraded": degraded.degraded,
        "failed_shards": [f.label for f in degraded.failures],
        "merged_elts": degraded.result.count,
        "golden_elts": golden.count,
        "merged_keys_subset_of_golden": set(degraded.result.keys())
        < set(golden.keys()),
    }


def bench_all_pairs_diff_chaos(bound: int, seed: int) -> dict:
    from repro.conformance import run_all_pairs
    from repro.models import x86t_elt
    from repro.resilience import FaultPlan, RetryPolicy
    from repro.synth import SynthesisConfig

    base = SynthesisConfig(bound=bound, model=x86t_elt())
    pairs = [("x86t_elt", "x86t_amd_bug"), ("sc", "x86tso")]

    started = time.monotonic()
    golden_matrix, _ = run_all_pairs(base, jobs=2, shard_count=4, pairs=pairs)
    golden_s = time.monotonic() - started

    plan = FaultPlan(
        seed=seed, crash_rate=1.0, exit_rate=1.0, crash_attempts=2
    )
    started = time.monotonic()
    chaos_matrix, records = run_all_pairs(
        base,
        jobs=2,
        shard_count=4,
        pairs=pairs,
        retry=RetryPolicy(backoff_base_s=0.0),
        faults=plan,
    )
    chaos_s = time.monotonic() - started
    resilience = records[0].resilience
    return {
        "golden": {"wall_s": round(golden_s, 3)},
        "chaos": {
            "wall_s": round(chaos_s, 3),
            "pool_rebuilds": resilience.pool_rebuilds,
            "retries": resilience.retries,
            "degraded": any(record.degraded for record in records),
        },
        "golden_digests": {
            f"{ref}->{sub}": _cell_digest(golden_matrix.cells[(ref, sub)])
            for ref, sub in pairs
        },
        "chaos_digests": {
            f"{ref}->{sub}": _cell_digest(chaos_matrix.cells[(ref, sub)])
            for ref, sub in pairs
        },
    }


def run_suite(quick: bool, seed: int, workdir: Path) -> dict:
    bound = 4 if quick else 5
    results = {}
    print("-- synthesize under worker kills ...")
    results["synthesize_worker_kills"] = bench_synthesize_worker_kills(
        bound, seed
    )
    print("-- store corruption + resume healing ...")
    results["store_corruption_heals"] = bench_store_corruption_heals(
        bound, seed, workdir
    )
    print("-- poison shard quarantine ...")
    results["poison_shard_degrades"] = bench_poison_shard_degrades(bound)
    print("-- all-pairs diff under worker kills ...")
    results["all_pairs_diff_chaos"] = bench_all_pairs_diff_chaos(bound, seed)
    return results


def check_suite(results: dict) -> list:
    failures = []

    kills = results["synthesize_worker_kills"]
    if kills["chaos_digest"] != kills["golden_digest"]:
        failures.append("worker-kill run diverged from the golden suite")
    if kills["chaos"]["pool_rebuilds"] < 2:
        failures.append(
            "expected >= 2 pool rebuilds (>= 2 worker kills), got "
            f"{kills['chaos']['pool_rebuilds']}"
        )
    if kills["chaos"]["degraded"]:
        failures.append("worker-kill run degraded; retries should recover")

    heal = results["store_corruption_heals"]
    if heal["chaos_digest"] != heal["golden_digest"]:
        failures.append("resumed run diverged after store corruption")
    if heal["resume"]["quarantined_entries"] < 1:
        failures.append("no store entry was quarantined on resume")
    if heal["first_run_degraded"]:
        failures.append("store corruption must not degrade in-memory results")
    if not heal["post_resume_verify_clean"]:
        failures.append("store still damaged after the healing resume")

    poison = results["poison_shard_degrades"]
    if not poison["degraded"]:
        failures.append("poison shard did not degrade the run")
    if poison["failed_shards"] != poison["targeted_shards"]:
        failures.append(
            f"failed shards {poison['failed_shards']} != targeted "
            f"{poison['targeted_shards']}"
        )
    if not poison["merged_keys_subset_of_golden"]:
        failures.append("degraded merge is not a subset of the golden suite")
    if not 0 < poison["merged_elts"] < poison["golden_elts"]:
        failures.append("degraded merge should be a strict, non-empty subset")

    diff = results["all_pairs_diff_chaos"]
    if diff["chaos_digests"] != diff["golden_digests"]:
        failures.append("all-pairs chaos matrix diverged from fault-free")
    if diff["chaos"]["pool_rebuilds"] < 1:
        failures.append("all-pairs chaos run never rebuilt the pool")
    if diff["chaos"]["degraded"]:
        failures.append("all-pairs chaos run degraded; retries should recover")

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller bounds")
    parser.add_argument("--seed", type=int, default=7, help="FaultPlan seed")
    parser.add_argument("--out", default=None, help="write results JSON here")
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate on the deterministic outcomes: byte-identical recovery, "
        ">= 2 worker kills survived, quarantine/degradation contracts",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="scratch directory for the chaos store (default: a tempdir)",
    )
    args = parser.parse_args(argv)

    print(f"chaos benchmark ({'quick' if args.quick else 'full'} mode, "
          f"seed {args.seed})")
    if args.workdir is not None:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        results = run_suite(args.quick, args.seed, workdir)
    else:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="bench-chaos-") as tmp:
            results = run_suite(args.quick, args.seed, Path(tmp))

    document = {
        "meta": {
            "mode": "quick" if args.quick else "full",
            "seed": args.seed,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workloads": results,
    }

    status = 0
    if args.check:
        failures = check_suite(results)
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print("all chaos gates passed: byte-identical recovery, "
                  "healing resume, contractual degradation")

    if args.out:
        Path(args.out).write_text(
            json.dumps(document, indent=2, sort_keys=True, default=repr) + "\n"
        )
        print(f"[results written to {args.out}]")
    return status


if __name__ == "__main__":
    sys.exit(main())

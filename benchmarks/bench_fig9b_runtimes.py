"""Fig 9b — synthesis runtime per per-axiom suite by instruction bound.

Paper expectations: runtimes grow super-exponentially with the bound and
(noise aside) monotonically per suite.  The sweep itself is shared with
the Fig 9a benchmark through the reporting cache; the benchmark below
times one representative synthesis point so pytest-benchmark reports a
stable, comparable number.
"""

from __future__ import annotations

from repro.models import x86t_elt
from repro.reporting import fig9_sweep, render_fig9b
from repro.synth import SynthesisConfig, synthesize


def test_fig9b_runtimes(benchmark, save_report) -> None:
    sweep = fig9_sweep()  # cached when bench_fig9a ran first
    runtimes = sweep.runtimes()

    # Monotone growth per suite, with the paper's own caveat: noise can
    # produce local non-monotonicity (their rmw_atomicity did), so require
    # large-scale growth — the last bound costs more than the first.
    for axiom, by_bound in runtimes.items():
        bounds = sorted(by_bound)
        if len(bounds) >= 2:
            assert by_bound[bounds[-1]] >= by_bound[bounds[0]], axiom

    def representative_point():
        return synthesize(
            SynthesisConfig(bound=6, model=x86t_elt(), target_axiom="invlpg")
        )

    benchmark.pedantic(representative_point, rounds=3, iterations=1)
    save_report("fig9b_runtimes", render_fig9b(sweep))

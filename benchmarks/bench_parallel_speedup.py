"""Parallel synthesis speedup — the orchestrator vs the serial engine.

Workload: the ``sc_per_loc`` per-axiom suite (the acceptance workload for
orchestrator equivalence; ``REPRO_BENCH_PAR_BOUND`` overrides the bound,
default 8 so the serial run is long enough to amortize process spawn).
The orchestrated run must (a) produce the exact serial ELT suite and
(b) on a machine with >= ``REPRO_BENCH_PAR_JOBS`` cores, finish at least
2x faster at 4 workers.  On smaller machines the speedup is still
measured and reported, but the 2x floor is not asserted — one core
cannot outrun itself, and pretending otherwise would only make the
benchmark green where it is meaningless.
"""

from __future__ import annotations

import os
import time

from repro.litmus import suite_from_synthesis
from repro.models import x86t_elt
from repro.orchestrate import run_sharded
from repro.reporting import render_shard_runtimes, render_table
from repro.synth import SynthesisConfig, synthesize

AXIOM = "sc_per_loc"
BOUND = int(os.environ.get("REPRO_BENCH_PAR_BOUND", "8"))
JOBS = int(os.environ.get("REPRO_BENCH_PAR_JOBS", "4"))
SPEEDUP_FLOOR = 2.0


def _config() -> SynthesisConfig:
    return SynthesisConfig(bound=BOUND, model=x86t_elt(), target_axiom=AXIOM)


def test_parallel_speedup(save_report) -> None:
    serial_started = time.monotonic()
    serial = synthesize(_config())
    serial_s = time.monotonic() - serial_started

    parallel_started = time.monotonic()
    orchestrated = run_sharded(_config(), jobs=JOBS)
    parallel_s = time.monotonic() - parallel_started

    # Equivalence first: speed means nothing if the artifact changed.
    serial_text = suite_from_synthesis(serial, prefix=AXIOM).dumps()
    parallel_text = suite_from_synthesis(
        orchestrated.result, prefix=AXIOM
    ).dumps()
    assert parallel_text == serial_text, "sharded suite diverged from serial"

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    table = render_table(
        ["metric", "value"],
        [
            ("workload", f"{AXIOM} @ bound {BOUND}"),
            ("unique ELTs", serial.count),
            ("serial runtime (s)", f"{serial_s:.2f}"),
            (f"parallel runtime, {JOBS} workers (s)", f"{parallel_s:.2f}"),
            ("speedup", f"{speedup:.2f}x"),
            ("available cores", cores),
            ("byte-identical suite", "yes"),
        ],
        title=f"parallel synthesis speedup ({JOBS} workers)",
    )
    shard_table = render_shard_runtimes(orchestrated)
    save_report("parallel_speedup", f"{table}\n\n{shard_table}")

    if cores >= JOBS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x speedup with {JOBS} workers on "
            f"{cores} cores, measured {speedup:.2f}x"
        )

"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and writes
its plain-text report to ``benchmarks/out/<name>.txt`` (also echoed to
stdout when pytest runs with ``-s``)."""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def save_report():
    OUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report written to {path}]")
        return path

    return _save

"""Fig 9a — number of ELTs synthesized in each per-axiom suite by
instruction bound, plus the §V-A2 tlb_causality attribution count.

Paper expectations (shape, not absolute numbers — see EXPERIMENTS.md):

* per-axiom minimum bounds lie between 4 and 7;
* the sc_per_loc suite is the largest component at every bound;
* over one hundred ELTs accumulate as bounds grow (the paper reaches 140
  unique programs at bounds 10-17 under one-week budgets; this harness
  reaches the same shape at laptop bounds — raise REPRO_FIG9_MAX_BOUND /
  REPRO_FIG9_BUDGET_S to push further).
"""

from __future__ import annotations

from repro.reporting import (
    fig9_sweep,
    render_fig9a,
    tlb_causality_attribution,
)


def test_fig9a_suite_sizes(benchmark, save_report) -> None:
    sweep = benchmark.pedantic(fig9_sweep, rounds=1, iterations=1)
    counts = sweep.counts()

    # Minimum bound per axiom is between 4 and 7 (§VI).  An axiom whose
    # sweep was capped below 7 (small REPRO_FIG9_MAX_BOUND) may legally
    # still be empty — rmw_atomicity needs bound 7.
    for axiom, by_bound in counts.items():
        first = min((b for b, c in by_bound.items() if c > 0), default=None)
        if first is None:
            assert max(by_bound, default=0) < 7, f"{axiom}: no ELTs by bound 7"
        else:
            assert 4 <= first <= 7, (axiom, first)

    # sc_per_loc dominates at every bound where suites overlap (§VI-A).
    for bound, sc_count in counts["sc_per_loc"].items():
        for axiom, by_bound in counts.items():
            if bound in by_bound:
                assert sc_count >= by_bound[bound], (axiom, bound)

    tlb_count, unique_total = tlb_causality_attribution(sweep)
    assert 0 < tlb_count < unique_total

    report = render_fig9a(sweep)
    report += (
        f"\n\ntlb_causality diagnostic attribution (§V-A2): "
        f"{tlb_count} of {unique_total} unique ELTs "
        f"(paper: 5 of 140 at bounds 10-17)"
    )
    save_report("fig9a_suite_sizes", report)

"""Substrate benchmark — the relational model finder and the SAT-backed
witness enumerator (the Alloy/Kodkod-port pipeline of §IV-C).

Times (a) relational model counting through the Kodkod-style translation
and (b) full witness-space enumeration for paper-figure programs, against
the explicit Python enumerator for the same space.
"""

from __future__ import annotations

from repro.litmus.figures import fig10a_ptwalk2, fig11_stale_mapping_after_ipi
from repro.relational import Problem, acyclic, subset
from repro.synth import enumerate_witnesses
from repro.synth.sat_backend import enumerate_witnesses_sat


def test_relational_total_order_enumeration(benchmark) -> None:
    atoms = ["a", "b", "c", "d"]

    def count_orders() -> int:
        problem = Problem(atoms)
        r = problem.declare("ord", 2)
        problem.constrain(acyclic(r))
        problem.constrain(subset(r.dot(r), r))
        from repro.relational import TupleSet, some

        for i, x in enumerate(atoms):
            for y in atoms[i + 1 :]:
                pair = TupleSet.pairs([(x, y)])
                rev = TupleSet.pairs([(y, x)])
                problem.constrain(some((r & pair) + (r & rev)))
        return sum(1 for _ in problem.iter_instances())

    assert benchmark(count_orders) == 24  # 4! strict total orders


def test_sat_witness_enumeration_ptwalk2(benchmark) -> None:
    program = fig10a_ptwalk2().execution.program

    def enumerate_all() -> int:
        return sum(1 for _ in enumerate_witnesses_sat(program))

    count = benchmark(enumerate_all)
    assert count == sum(1 for _ in enumerate_witnesses(program))


def test_explicit_witness_enumeration_fig11(benchmark) -> None:
    program = fig11_stale_mapping_after_ipi().execution.program

    def enumerate_all() -> int:
        return sum(1 for _ in enumerate_witnesses(program))

    assert benchmark(enumerate_all) == 2

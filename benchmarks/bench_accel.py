"""Microbenchmarks for the C-accelerated propagation core.

Runs the pigeonhole and AllSAT workloads named in the acceptance
criteria on the pure-Python flat-arena core (``array``) and the
C-accelerated core (``accel``), asserts the two produce byte-identical
search counters (the lockstep contract), and records the wall-clock
speedup honestly — whatever this machine measured, no rounding up.

Usage::

    PYTHONPATH=src python benchmarks/bench_accel.py --out BENCH_accel.json
    PYTHONPATH=src python benchmarks/bench_accel.py --quick --check

``--check`` fails (exit 1) when the extension is not built or any
workload's counters diverge between cores; add ``--min-speedup`` to
also gate on wall clock (only meaningful on quiet, comparable
hardware — CI shares runners, so the default gate is counters only).
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from dataclasses import asdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.sat import Cnf, accel_status, create_solver  # noqa: E402

COUNTER_KEYS = ("decisions", "propagations", "conflicts", "learned_clauses")
CORES = ("array", "accel")


# ----------------------------------------------------------------------
# Formula generators (deterministic)
# ----------------------------------------------------------------------
def pigeonhole(holes: int) -> Cnf:
    """PHP(holes+1, holes): classically hard UNSAT, resolution-heavy."""
    pigeons = holes + 1
    cnf = Cnf(pigeons * holes)
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    for p in range(pigeons):
        cnf.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var(p1, h), -var(p2, h)])
    return cnf


def random_3sat(num_vars: int, num_clauses: int, seed: int) -> Cnf:
    rng = random.Random(seed)
    cnf = Cnf(num_vars)
    for _ in range(num_clauses):
        vs = rng.sample(range(1, num_vars + 1), 3)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in vs])
    return cnf


# ----------------------------------------------------------------------
# Workloads: each returns (counters, models_or_result_note) per core
# ----------------------------------------------------------------------
def wl_pigeonhole(quick: bool, core: str) -> tuple[dict, str]:
    holes = 6 if quick else 7
    solver = create_solver(pigeonhole(holes), core=core)
    result = solver.solve()
    assert not result.satisfiable
    return asdict(solver.stats), f"php({holes}) UNSAT"


def wl_allsat(quick: bool, core: str) -> tuple[dict, str]:
    nv, nc = (18, 40) if quick else (22, 50)
    solver = create_solver(random_3sat(nv, nc, seed=3), core=core)
    models = sum(1 for _ in solver.iter_solutions())
    return asdict(solver.stats), f"{models} models enumerated"


def wl_allsat_inprocess(quick: bool, core: str) -> tuple[dict, str]:
    """AllSAT with aggressive inprocessing: exercises the compaction
    path (arena rewrite in C) between enumeration bursts."""
    nv, nc = (16, 38) if quick else (20, 46)
    solver = create_solver(random_3sat(nv, nc, seed=11), core=core, inprocess=True)
    solver._max_learned = 20
    models = sum(1 for _ in solver.iter_solutions())
    return asdict(solver.stats), f"{models} models, inprocessing on"


def wl_random_3sat_batch(quick: bool, core: str) -> tuple[dict, str]:
    """A batch of near-threshold instances: mixed SAT/UNSAT decisions."""
    count = 10 if quick else 20
    totals: dict = {}
    sat = 0
    for seed in range(count):
        solver = create_solver(random_3sat(20, 85, seed=seed), core=core)
        sat += 1 if solver.solve().satisfiable else 0
        for key, value in asdict(solver.stats).items():
            totals[key] = totals.get(key, 0) + value
    return totals, f"{count} instances, {sat} SAT"


WORKLOADS = [
    ("pigeonhole_unsat", wl_pigeonhole),
    ("allsat_enumeration", wl_allsat),
    ("allsat_inprocess_compaction", wl_allsat_inprocess),
    ("random_3sat_batch", wl_random_3sat_batch),
]


def run_suite(quick: bool) -> tuple[dict, list[str]]:
    failures: list[str] = []
    results: dict = {}
    for name, fn in WORKLOADS:
        walls: dict = {}
        stats_by_core: dict = {}
        note = ""
        for core in CORES:
            started = time.perf_counter()
            stats, note = fn(quick, core)
            walls[core] = round(time.perf_counter() - started, 6)
            stats_by_core[core] = stats
        if stats_by_core["array"] != stats_by_core["accel"]:
            failures.append(f"{name}: accel counters diverged from array core")
        counters = {k: stats_by_core["array"][k] for k in COUNTER_KEYS}
        speedup = (
            round(walls["array"] / walls["accel"], 3) if walls["accel"] > 0 else None
        )
        results[name] = {
            "counters": counters,
            "counter_total": sum(counters.values()),
            "wall_s": walls,
            "speedup": speedup,
            "lockstep": stats_by_core["array"] == stats_by_core["accel"],
            "note": note,
        }
        print(
            f"  {name:32s} array {walls['array']:8.3f}s  "
            f"accel {walls['accel']:8.3f}s  {speedup}x  [{note}]"
        )
    return results, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized workloads")
    parser.add_argument("--out", type=Path, help="write the JSON document here")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when the extension is unbuilt or counters diverge",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="with --check: also require every workload's accel speedup "
        "to reach this factor (wall clock — quiet hardware only)",
    )
    args = parser.parse_args(argv)

    status = accel_status()
    if not status["available"]:
        message = (
            "repro.sat._accel is not built; run "
            "`PYTHONPATH=src python -m repro.sat.build_accel` first"
        )
        print(message, file=sys.stderr)
        return 1 if args.check else 0

    mode = "quick" if args.quick else "full"
    print(f"bench_accel ({mode} mode): array vs accel, lockstep-gated")
    results, failures = run_suite(args.quick)

    speedups = [r["speedup"] for r in results.values() if r["speedup"]]
    document = {
        "meta": {
            "mode": mode,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "solver": status,
        },
        "workloads": results,
        "min_speedup": min(speedups) if speedups else None,
        "aggregate_wall_speedup": (
            round(
                sum(r["wall_s"]["array"] for r in results.values())
                / sum(r["wall_s"]["accel"] for r in results.values()),
                3,
            )
            if results
            else None
        ),
    }
    print(
        f"min speedup {document['min_speedup']}x, "
        f"aggregate {document['aggregate_wall_speedup']}x"
    )

    if args.check and args.min_speedup is not None:
        for name, entry in results.items():
            if entry["speedup"] is not None and entry["speedup"] < args.min_speedup:
                failures.append(
                    f"{name}: speedup {entry['speedup']}x below "
                    f"--min-speedup {args.min_speedup}x"
                )

    if args.out:
        args.out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if (args.check and failures) else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Symmetry-aware enumeration: wall-time and orbit-counter benchmark.

Measures the symmetry subsystem (:mod:`repro.symmetry` — generation-time
arrangement canonicalization, orbit-level program dedup, witness-orbit
pruning, SAT lex-leader clauses) against the **no-symmetry-breaking
baseline**: ``symmetry=False`` *and* ``canonical_pruning=False``, i.e.
the bounded-exhaustive search exploring every thread arrangement of
every isomorphism class and every member of every witness orbit, with
only the downstream canonical dedup keeping the output correct (the
paper's Fig 9b ablation).  The *artifacts* — synthesized suites,
conformance verdicts and discriminating tests — are contractually
byte-identical across the two paths, and the benchmark verifies that
before reporting any speedup (the naive path's enumeration counters are
genuinely larger: they describe the redundant space it walks).

Workloads (full mode; ``--quick`` shrinks the bounds for CI):

* ``synthesize_elt_default`` — the paper-default 2-thread x86t_elt
  whole-predicate suite.  Thread symmetry is scarce here (two non-empty
  ELT threads barely fit the bound), so this workload is the honest
  low end of the range.
* ``synthesize_mcm_explicit`` — user-level MCM synthesis ([30]-baseline
  mode) at 4 threads, explicit backend: isomorphism classes have up to
  4! members, the regime the subsystem targets.
* ``synthesize_mcm_sat`` — the same space through the relational SAT
  backend, where every duplicate program the naive path explores costs
  a full translation.
* ``diff_all_pairs_mcm_sat`` — the catalog conformance matrix over the
  4-thread MCM space: one fused enumeration for all 20 pairs, so
  per-program costs (translation, orbit pruning) dominate.

Wall times vary with hardware, so CI gates only the *deterministic*
orbit counters (``--check``) against the committed quick baseline
(``benchmarks/baseline_symmetry_quick.json``): programs enumerated per
path, symmetric programs seen, witnesses orbit-pruned, lex-leader
clauses emitted, SAT translations — plus artifact equality between the
two paths.

Usage::

    PYTHONPATH=src python benchmarks/bench_symmetry.py --out after.json
    PYTHONPATH=src python benchmarks/bench_symmetry.py --quick --check \
        --baseline benchmarks/baseline_symmetry_quick.json

The committed ``BENCH_symmetry.json`` at the repo root is a full-mode
run of this script.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path


def _reset_caches() -> None:
    from repro.synth import clear_minimality_cache, shared_session_cache

    shared_session_cache().clear()
    clear_minimality_cache()


def _suite_digest(result, prefix: str) -> str:
    from repro.litmus import suite_from_synthesis

    text = suite_from_synthesis(result, prefix=prefix).dumps()
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _naive(config_kwargs: dict) -> dict:
    """The no-symmetry-breaking oracle configuration."""
    return {**config_kwargs, "symmetry": False, "canonical_pruning": False}


def _counters(stats) -> dict:
    return {
        "programs": stats.programs_enumerated,
        "executions": stats.executions_enumerated,
        "symmetric_programs": stats.symmetric_programs,
        "orbit_witnesses_pruned": stats.orbit_witnesses_pruned,
        "orbit_replays": stats.orbit_replays,
        "symmetry_clauses": stats.sat_symmetry_clauses,
        "translations": stats.sat_translations,
    }


# ----------------------------------------------------------------------
# Workloads: each returns (wall_s, counters, artifact) per path
# ----------------------------------------------------------------------
def _synthesize_workload(config_kwargs: dict, prefix: str):
    def run(symmetric: bool):
        from repro.synth import SynthesisConfig, synthesize

        kwargs = config_kwargs if symmetric else _naive(config_kwargs)
        _reset_caches()
        started = time.perf_counter()
        result = synthesize(SynthesisConfig(**kwargs))
        wall = time.perf_counter() - started
        artifact = {
            "elts": result.count,
            "digest": _suite_digest(result, prefix),
        }
        return wall, _counters(result.stats), artifact

    return run


def wl_synthesize_elt_default(quick: bool):
    # Bound 6 in both modes: it is CI-cheap, and it is the smallest
    # default-config bound with auto-symmetric programs (8 of 203), so
    # the gates can require the machinery to engage.
    return _synthesize_workload({"bound": 6}, "elt")


def wl_synthesize_mcm_explicit(quick: bool):
    return _synthesize_workload(
        {"bound": 4 if quick else 5, "mcm_mode": True, "max_threads": 4},
        "mcm",
    )


def wl_synthesize_mcm_sat(quick: bool):
    return _synthesize_workload(
        {
            "bound": 4 if quick else 5,
            "mcm_mode": True,
            "max_threads": 4,
            "witness_backend": "sat",
        },
        "mcm",
    )


def wl_diff_all_pairs_mcm_sat(quick: bool):
    def run(symmetric: bool):
        from repro.conformance import run_all_pairs
        from repro.models import catalog_models, x86t_elt
        from repro.synth import SuiteStats, SynthesisConfig

        kwargs = {
            "bound": 4,
            "mcm_mode": True,
            "max_threads": 3 if quick else 4,
            "witness_backend": "sat",
        }
        if not symmetric:
            kwargs = _naive(kwargs)
        _reset_caches()
        started = time.perf_counter()
        matrix, _records = run_all_pairs(
            SynthesisConfig(model=x86t_elt(), **kwargs),
            models=catalog_models(),
            jobs=1,
        )
        wall = time.perf_counter() - started
        aggregate = SuiteStats()
        for cell in matrix.cells.values():
            aggregate.absorb(cell.stats)
        payload = matrix.to_json()
        for cell_json in payload["pairs"]:
            # The semantic artifact must be identical across paths:
            # verdicts and discriminating suites.  Wall clock is never
            # byte-stable, and the naive path's counts/stats describe a
            # genuinely larger explored space (it re-walks every thread
            # arrangement of every class), so they are reported but not
            # compared.
            cell_json.pop("stats")
            cell_json.pop("counts")
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        counters = _counters(aggregate)
        counters["programs"] = next(
            iter(matrix.cells.values())
        ).stats.programs_enumerated
        artifact = {
            "discriminating": matrix.discriminating_total,
            "digest": digest,
        }
        return wall, counters, artifact

    return run


WORKLOADS = [
    ("synthesize_elt_default", wl_synthesize_elt_default),
    ("synthesize_mcm_explicit", wl_synthesize_mcm_explicit),
    ("synthesize_mcm_sat", wl_synthesize_mcm_sat),
    ("diff_all_pairs_mcm_sat", wl_diff_all_pairs_mcm_sat),
]

#: Counters gated against the committed baseline (deterministic for a
#: fixed configuration; wall times are not).
GATED_COUNTERS = (
    "programs",
    "executions",
    "symmetric_programs",
    "orbit_witnesses_pruned",
    "orbit_replays",
    "symmetry_clauses",
    "translations",
)


# ----------------------------------------------------------------------
# Deterministic gates (--check)
# ----------------------------------------------------------------------
def check_workload(name: str, entry: dict, baseline) -> list:
    failures = []
    if entry["artifact_symmetry"] != entry["artifact_naive"]:
        failures.append(
            f"{name}: symmetry and --no-symmetry paths disagree on artifacts"
        )
    sym = entry["symmetry"]["counters"]
    naive = entry["naive"]["counters"]
    if naive["programs"] <= sym["programs"]:
        failures.append(
            f"{name}: naive path should explore strictly more programs "
            f"({naive['programs']} vs {sym['programs']})"
        )
    if sym["symmetric_programs"] == 0:
        failures.append(f"{name}: symmetry machinery never engaged")
    if baseline is not None:
        expected = baseline.get(name)
        if expected is None:
            failures.append(f"{name}: missing from baseline")
        else:
            for key in GATED_COUNTERS:
                for path in ("symmetry", "naive"):
                    got = entry[path]["counters"][key]
                    want = expected[path][key]
                    if got != want:
                        failures.append(
                            f"{name}: {path} counter {key} = {got}, "
                            f"baseline says {want}"
                        )
    return failures


def run_suite(quick: bool) -> dict:
    results: dict = {}
    for name, factory in WORKLOADS:
        run = factory(quick)
        entry: dict = {}
        for label, symmetric in (("naive", False), ("symmetry", True)):
            wall, counters, artifact = run(symmetric)
            entry[label] = {"wall_s": round(wall, 6), "counters": counters}
            entry[f"artifact_{label}"] = artifact
            print(
                f"  {name:26s} {label:9s} {wall:8.3f}s  "
                f"programs={counters['programs']} "
                f"pruned={counters['orbit_witnesses_pruned']}"
            )
        entry["speedup"] = round(
            entry["naive"]["wall_s"] / max(1e-9, entry["symmetry"]["wall_s"]),
            3,
        )
        print(f"  {name:26s} speedup   {entry['speedup']:.2f}x")
        results[name] = entry
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller bounds")
    parser.add_argument("--out", default=None, help="write results JSON here")
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed quick-baseline JSON to gate counters against",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate on the deterministic orbit counters and on artifact "
        "equality between the symmetry and --no-symmetry paths",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="also gate on aggregate wall speedup (only meaningful on "
        "quiet, comparable hardware)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        help="write the gated counters of this run as a baseline JSON",
    )
    args = parser.parse_args(argv)

    print(
        "symmetry-aware enumeration benchmark "
        f"({'quick' if args.quick else 'full'} mode)"
    )
    results = run_suite(args.quick)
    naive_total = sum(e["naive"]["wall_s"] for e in results.values())
    sym_total = sum(e["symmetry"]["wall_s"] for e in results.values())
    aggregate = round(naive_total / max(1e-9, sym_total), 3)
    print(f"aggregate wall speedup: {aggregate}x")

    document = {
        "meta": {
            "mode": "quick" if args.quick else "full",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "baseline_config": "symmetry=False, canonical_pruning=False "
            "(no symmetry breaking anywhere)",
        },
        "workloads": results,
        "aggregate_wall_speedup": aggregate,
    }

    status = 0
    if args.check:
        baseline = None
        if args.baseline:
            baseline = json.loads(Path(args.baseline).read_text())
        failures = []
        for name, entry in results.items():
            failures.extend(check_workload(name, entry, baseline))
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        if failures:
            status = 1
    if args.min_speedup is not None and aggregate < args.min_speedup:
        print(
            f"GATE FAILURE: aggregate speedup {aggregate}x below "
            f"{args.min_speedup}x",
            file=sys.stderr,
        )
        status = 1

    if args.write_baseline:
        baseline_doc = {
            name: {
                path: {
                    key: entry[path]["counters"][key]
                    for key in GATED_COUNTERS
                }
                for path in ("symmetry", "naive")
            }
            for name, entry in results.items()
        }
        Path(args.write_baseline).write_text(
            json.dumps(baseline_doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"[baseline written to {args.write_baseline}]")
    if args.out:
        Path(args.out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        print(f"[results written to {args.out}]")
    return status


if __name__ == "__main__":
    raise SystemExit(main())

"""§VI-B — comparison against the hand-written COATCheck suite.

Paper numbers reproduced exactly by the reconstructed suite + computed
classification: 40 tests = 9 unsupported-IPI + 9 non-spanning + 22
relevant; 7 category-1 ELTs matching 4 distinct synthesized programs;
15 category-2 (reducible); 0 unmatched.
"""

from __future__ import annotations

from repro.litmus import Category
from repro.reporting import (
    comparison_corpus,
    render_comparison,
    run_coatcheck_comparison,
)


def test_vib_coatcheck_comparison(benchmark, save_report) -> None:
    corpus = comparison_corpus()

    report = benchmark.pedantic(
        run_coatcheck_comparison, args=(corpus,), rounds=1, iterations=1
    )

    assert len(report.classifications) == 40
    assert report.count(Category.UNSUPPORTED) == 9
    assert report.count(Category.NOT_SPANNING) == 9
    assert report.relevant == 22
    assert report.count(Category.CATEGORY_1) == 7
    assert len(report.category1_matched_programs()) == 4
    assert report.count(Category.CATEGORY_2) == 15
    assert report.count(Category.UNMATCHED) == 0

    save_report("vib_coatcheck_comparison", render_comparison(report))

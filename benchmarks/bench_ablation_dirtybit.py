"""Ablation — modeling dirty-bit updates as Writes vs RMWs (§III-A2).

The paper models each dirty-bit update as a single Write, noting this
"reduces the number of instructions TransForm requires to synthesize
programs with Writes from three ... to two".  Under the RMW modeling every
user-facing Write charges one extra instruction against the bound, so at a
fixed bound fewer (or equal) ELTs fit — quantified here.
"""

from __future__ import annotations

from repro.models import x86t_elt
from repro.reporting import render_table
from repro.synth import SynthesisConfig, synthesize


def run(bound: int, as_rmw: bool):
    return synthesize(
        SynthesisConfig(
            bound=bound,
            model=x86t_elt(),
            target_axiom="sc_per_loc",
            dirty_bit_as_rmw=as_rmw,
        )
    )


def test_ablation_dirty_bit_modeling(benchmark, save_report) -> None:
    rows = []
    for bound in (4, 5, 6):
        as_write = run(bound, False)
        as_rmw = (
            benchmark.pedantic(run, args=(bound, True), rounds=1, iterations=1)
            if bound == 6
            else run(bound, True)
        )
        # The Write modeling fits at least as many ELTs in the bound, and
        # every RMW-modeled ELT also exists under the Write modeling.
        assert as_rmw.count <= as_write.count
        assert as_rmw.keys() <= as_write.keys()
        rows.append((bound, as_write.count, as_rmw.count))

    save_report(
        "ablation_dirtybit",
        render_table(
            ["bound", "dirty bit as Write (paper)", "dirty bit as RMW"],
            rows,
            title="§III-A2 ablation — sc_per_loc suite size by dirty-bit modeling",
        ),
    )

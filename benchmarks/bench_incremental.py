"""Incremental witness sessions: wall-time and counter benchmark.

Measures the three workloads the session machinery accelerates, each
against its fresh-solver baseline (``SynthesisConfig.incremental=False``
and, for the all-pairs workload, the pre-fusion per-pair shape):

* ``synthesize_axiom_suites`` — all five per-axiom ELT suites plus the
  any-axiom suite at one bound (the per-bound slice of a ``sweep``).
  The fresh path translates and enumerates every program once *per
  suite*; the session path once *total*, replaying cached witness lists.
* ``diff_all_pairs`` — the catalog conformance matrix.  Baseline: one
  dedicated fresh differential run per ordered pair (the pre-fusion
  cost).  Session path: the fused ``run_all_pairs`` driver — every
  program translated/enumerated once for all 20 pairs, axiom verdicts
  shared through one slot table.
* ``assumption_queries`` — the session API itself: per program, seven
  model/axiom questions ("violates axiom A?" ×5, "any permitted
  witness?", "reference forbids ∧ subject permits?") posed as
  activation-literal assumptions against one persistent solver, vs seven
  fresh ``WitnessProblem`` builds + cold solves.

Wall times vary with hardware, so CI gates only the *deterministic*
counters (``--check``):

* session paths must translate each program exactly once
  (``translations == programs``, ``translations_avoided`` covering the
  rest);
* both paths must produce identical results (suite digests, matrix
  verdicts, query answers).

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py --out after.json
    PYTHONPATH=src python benchmarks/bench_incremental.py --quick --check

The committed ``BENCH_incremental_sessions.json`` at the repo root is a
full-mode run of this script.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path


def _reset_caches() -> None:
    from repro.synth import clear_minimality_cache, shared_session_cache

    shared_session_cache().clear()
    clear_minimality_cache()


def _suite_digest(result, prefix: str) -> str:
    from repro.litmus import suite_from_synthesis

    text = suite_from_synthesis(result, prefix=prefix).dumps()
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Workloads: each returns (wall_s, counters, artifact) per path
# ----------------------------------------------------------------------
def wl_synthesize_suites(quick: bool, incremental: bool):
    from repro.models import X86T_ELT_AXIOM_NAMES, x86t_elt
    from repro.synth import SuiteStats, SynthesisConfig, synthesize

    bound = 5 if quick else 6
    targets = list(X86T_ELT_AXIOM_NAMES) + [None]
    _reset_caches()
    started = time.perf_counter()
    aggregate = SuiteStats()
    digests = []
    programs = 0
    for target in targets:
        result = synthesize(
            SynthesisConfig(
                bound=bound,
                model=x86t_elt(),
                target_axiom=target,
                witness_backend="sat",
                incremental=incremental,
            )
        )
        aggregate.absorb(result.stats)
        programs = result.stats.programs_enumerated
        digests.append(_suite_digest(result, target or "elt"))
    wall = time.perf_counter() - started
    counters = {
        "programs": programs,
        "suites": len(targets),
        "translations": aggregate.sat_translations,
        "translations_avoided": aggregate.sat_translations_avoided,
        "sessions": aggregate.sat_sessions,
        "decisions": aggregate.sat_decisions,
        "propagations": aggregate.sat_propagations,
    }
    return wall, counters, {"bound": bound, "digests": digests}


def wl_diff_all_pairs(quick: bool, incremental: bool):
    from repro.conformance import (
        DiffConfig,
        catalog_pairs,
        diff_models,
        run_all_pairs,
    )
    from repro.models import catalog_models, x86t_elt
    from repro.synth import SuiteStats, SynthesisConfig

    bound = 4 if quick else 5
    models = catalog_models()
    _reset_caches()
    started = time.perf_counter()
    aggregate = SuiteStats()
    verdicts = {}
    programs = 0
    if incremental:
        matrix, _records = run_all_pairs(
            SynthesisConfig(
                bound=bound,
                model=x86t_elt(),
                witness_backend="sat",
                incremental=True,
            ),
            models=models,
            jobs=1,
        )
        cells = matrix.cells
    else:
        # The pre-fusion shape: one dedicated fresh pass per pair.
        cells = {}
        for ref, sub in catalog_pairs(models):
            cell = diff_models(
                DiffConfig(
                    base=SynthesisConfig(
                        bound=bound,
                        model=models[ref],
                        witness_backend="sat",
                        incremental=False,
                    ),
                    subject=models[sub],
                )
            )
            cells[(ref, sub)] = cell
    for pair, cell in cells.items():
        aggregate.absorb(cell.stats)
        programs = cell.stats.programs_enumerated
        verdicts["/".join(pair)] = (cell.verdict.value, cell.count)
    wall = time.perf_counter() - started
    counters = {
        "programs": programs,
        "pairs": len(cells),
        "translations": aggregate.sat_translations,
        "translations_avoided": aggregate.sat_translations_avoided,
        "decisions": aggregate.sat_decisions,
        "propagations": aggregate.sat_propagations,
    }
    return wall, counters, {"bound": bound, "verdicts": verdicts}


def wl_assumption_queries(quick: bool, incremental: bool):
    from repro.models import x86t_amd_bug, x86t_elt
    from repro.synth import SynthesisConfig, WitnessSession
    from repro.synth.sat_backend import WitnessProblem
    from repro.synth.skeletons import enumerate_programs

    bound = 4 if quick else 5
    model = x86t_elt()
    subject = x86t_amd_bug()
    programs = list(
        enumerate_programs(
            SynthesisConfig(bound=bound, model=x86t_elt())
        )
    )
    _reset_caches()
    started = time.perf_counter()
    answers = []
    translations = 0
    incremental_solves = 0
    retained = 0
    for program in programs:
        if incremental:
            session = WitnessSession(program)
            for axiom in model.axiom_names:
                answers.append(
                    session.has_witness(model=model, violated_axiom=axiom)
                )
            answers.append(session.has_witness(model=model))
            answers.append(
                session.has_discriminating_witness(model, subject)
            )
            translations += session.stats.translations
            incremental_solves += session.stats.incremental_solves
            retained += session.stats.retained_learned_clauses
        else:

            def fresh_query(constrain):
                nonlocal translations
                encoded = WitnessProblem(program)
                constrain(encoded)
                translations += 1
                return encoded.problem.solve() is not None

            for axiom in model.axiom_names:
                answers.append(
                    fresh_query(
                        lambda p, a=axiom: p.constrain_axiom_violated(
                            model, a
                        )
                    )
                )
            answers.append(
                fresh_query(lambda p: p.constrain_model(model, violated=False))
            )

            def both(p):
                p.constrain_model(model, violated=True)
                p.constrain_model(subject, violated=False)

            answers.append(fresh_query(both))
    wall = time.perf_counter() - started
    counters = {
        "programs": len(programs),
        "queries": len(answers),
        "translations": translations,
        "incremental_solves": incremental_solves,
        "retained_learned_clauses": retained,
    }
    return wall, counters, {
        "bound": bound,
        "answers": "".join("1" if a else "0" for a in answers),
    }


WORKLOADS = [
    ("synthesize_axiom_suites", wl_synthesize_suites),
    ("diff_all_pairs", wl_diff_all_pairs),
    ("assumption_queries", wl_assumption_queries),
]


# ----------------------------------------------------------------------
# Deterministic gates (--check)
# ----------------------------------------------------------------------
def check_workload(name: str, entry: dict) -> list:
    failures = []
    fresh, incr = entry["fresh"], entry["incremental"]
    if entry["artifact_fresh"] != entry["artifact_incremental"]:
        failures.append(f"{name}: paths disagree on results")
    translations = incr["counters"]["translations"]
    programs = incr["counters"]["programs"]
    if translations != programs:
        failures.append(
            f"{name}: session path ran {translations} translations for "
            f"{programs} programs (must be exactly one per program)"
        )
    if fresh["counters"]["translations"] <= translations:
        failures.append(
            f"{name}: fresh path should translate strictly more "
            f"({fresh['counters']['translations']} vs {translations})"
        )
    return failures


def run_suite(quick: bool) -> dict:
    results: dict = {}
    for name, fn in WORKLOADS:
        entry: dict = {}
        for label, incremental in (("fresh", False), ("incremental", True)):
            wall, counters, artifact = fn(quick, incremental)
            entry[label] = {"wall_s": round(wall, 6), "counters": counters}
            entry[f"artifact_{label}"] = artifact
            print(
                f"  {name:28s} {label:11s} {wall:8.3f}s  "
                f"translations={counters['translations']}"
            )
        entry["speedup"] = round(
            entry["fresh"]["wall_s"]
            / max(1e-9, entry["incremental"]["wall_s"]),
            3,
        )
        print(f"  {name:28s} speedup     {entry['speedup']:.2f}x")
        results[name] = entry
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller bounds")
    parser.add_argument("--out", default=None, help="write results JSON here")
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate on the deterministic counters: one translation per "
        "program on the session path, identical results on both paths",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="also gate on aggregate wall speedup (only meaningful on "
        "quiet, comparable hardware)",
    )
    args = parser.parse_args(argv)

    print(
        "incremental-session benchmark "
        f"({'quick' if args.quick else 'full'} mode)"
    )
    results = run_suite(args.quick)
    fresh_total = sum(e["fresh"]["wall_s"] for e in results.values())
    incr_total = sum(e["incremental"]["wall_s"] for e in results.values())
    aggregate = round(fresh_total / max(1e-9, incr_total), 3)
    print(f"aggregate wall speedup: {aggregate}x")

    document = {
        "meta": {
            "mode": "quick" if args.quick else "full",
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workloads": results,
        "aggregate_wall_speedup": aggregate,
    }

    status = 0
    if args.check:
        failures = []
        for name, entry in results.items():
            failures.extend(check_workload(name, entry))
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        if failures:
            status = 1
    if args.min_speedup is not None and aggregate < args.min_speedup:
        print(
            f"GATE FAILURE: aggregate speedup {aggregate}x below "
            f"{args.min_speedup}x",
            file=sys.stderr,
        )
        status = 1

    if args.out:
        Path(args.out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        print(f"[results written to {args.out}]")
    return status


if __name__ == "__main__":
    raise SystemExit(main())

"""§VI-A cited baseline — user-level MCM litmus-test synthesis [30].

The paper contrasts its ELT counts against Lustig et al.'s x86-TSO
synthesis, whose sc_per_loc suite *saturates* (10 tests in their
relaxation semantics).  In MCM mode this engine shows the same saturation
shape: the sc_per_loc suite stops growing once all coherence shapes fit
the bound (5 tests under our stricter closed-group relaxations — see
EXPERIMENTS.md for the accounting of the difference), while the MTM
suites of Fig 9a keep growing — the paper's "richer interactions" point.
"""

from __future__ import annotations

from repro.models import x86tso
from repro.reporting import render_series_table
from repro.synth import SynthesisConfig, synthesize


def mcm_sweep(axiom: str, bounds: range) -> dict[int, int]:
    counts: dict[int, int] = {}
    for bound in bounds:
        config = SynthesisConfig(
            bound=bound, model=x86tso(), target_axiom=axiom, mcm_mode=True
        )
        counts[bound] = synthesize(config).count
    return counts


def test_mcm_baseline_saturation(benchmark, save_report) -> None:
    counts = benchmark.pedantic(
        mcm_sweep, args=("sc_per_loc", range(2, 6)), rounds=1, iterations=1
    )
    # Saturation: the suite stops growing.
    assert counts[3] == counts[4] == counts[5]
    assert counts[5] == 5

    causality = mcm_sweep("causality", range(2, 5))
    rmw = mcm_sweep("rmw_atomicity", range(2, 5))
    report = render_series_table(
        {
            "sc_per_loc (mcm)": counts,
            "causality (mcm)": causality,
            "rmw_atomicity (mcm)": rmw,
        },
        x_label="bound",
        title="MCM-mode synthesis baseline (x86-TSO, user-level [30])",
    )
    report += (
        "\n\nsc_per_loc saturates (paper reports saturation at 10 tests under"
        "\n[30]'s looser relaxation semantics; ours is 5 — see EXPERIMENTS.md)"
    )
    save_report("mcm_baseline", report)

"""End-to-end SAT-substrate benchmark with JSON recording and regression gating.

Unlike the pytest-benchmark files next to it, this is a plain script: it
runs a fixed, deterministic workload suite through the CDCL solver and the
Kodkod-style relational translation, records wall times *and* solver
counters to JSON, and can compare itself against a previously committed
baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_sat_solver.py --out after.json
    PYTHONPATH=src python benchmarks/bench_sat_solver.py --quick \
        --baseline benchmarks/baseline_sat_quick.json --max-regression 2.0

Gating semantics (used by the CI smoke job):

* solver *counters* (decisions + propagations + conflicts) are
  deterministic and machine-independent, so they are always gated: a
  workload whose counter total exceeds ``max_regression`` times the
  baseline fails the run;
* *wall times* vary with hardware, so they are reported (and a speedup
  table is printed) but only gated when ``--check-wall`` is passed.

The committed ``BENCH_sat_substrate.json`` at the repo root pairs a
pre-optimization run (``before``) with a post-optimization run
(``after``); build it with ``--merge-before``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Optional

from repro.sat import CdclSolver, iter_models, solve_cnf

Counters = dict


def _has_stats_hook() -> bool:
    # True on trees where iter_models grew its `stats` parameter (the
    # pre-optimization seed lacks it; feature-detected rather than caught
    # as TypeError so real TypeErrors are never masked).
    import inspect

    return "stats" in inspect.signature(iter_models).parameters


def _has_witness_backend() -> bool:
    from repro.synth import SynthesisConfig

    return "witness_backend" in SynthesisConfig.__dataclass_fields__


def _merge_stats(total: dict, stats) -> None:
    for key in ("decisions", "propagations", "conflicts", "learned_clauses"):
        total[key] = total.get(key, 0) + getattr(stats, key, 0)


# ----------------------------------------------------------------------
# Workload definitions (all deterministic)
# ----------------------------------------------------------------------
# The CNF generators are shared with the pytest-benchmark suite so both
# harnesses measure literally the same formulas (this script runs with
# benchmarks/ on sys.path).
from bench_substrate_sat import pigeonhole, random_3sat  # noqa: E402


def wl_pigeonhole(quick: bool) -> tuple[Counters, object]:
    holes = 6 if quick else 7
    result = solve_cnf(pigeonhole(holes))
    assert not result.satisfiable
    counters: Counters = {}
    _merge_stats(counters, result.stats)
    return counters, f"php({holes}) UNSAT"


def wl_random_3sat(quick: bool) -> tuple[Counters, object]:
    counters: Counters = {}
    instances = 4 if quick else 12
    sat_count = 0
    for seed in range(instances):
        cnf = random_3sat(60, 255, seed=seed + 7)  # ratio 4.25: hard region
        result = CdclSolver(cnf).solve()
        if result.satisfiable:
            assert cnf.evaluate(result.model)
            sat_count += 1
        _merge_stats(counters, result.stats)
    return counters, f"{sat_count}/{instances} sat"


def wl_allsat_blocking(quick: bool) -> tuple[Counters, object]:
    """The AllSAT blocking-clause loop that iter_instances relies on: the
    clause database keeps absorbing blocking clauses and learned clauses."""
    cnf = random_3sat(20, 46, seed=3) if quick else random_3sat(24, 55, seed=3)
    counters: Counters = {}
    if _has_stats_hook():
        from repro.sat import SolverStats

        stats = SolverStats()
        count = sum(1 for _ in iter_models(cnf, stats=stats))
        _merge_stats(counters, stats)
    else:  # pre-optimization tree: plain enumeration, no counters
        count = sum(1 for _ in iter_models(cnf))
    return counters, f"{count} models"


def wl_allsat_projected(quick: bool) -> tuple[Counters, object]:
    cnf = random_3sat(18, 40, seed=9) if quick else random_3sat(22, 50, seed=9)
    projection = list(range(1, cnf.num_vars // 2 + 1))
    counters: Counters = {}
    if _has_stats_hook():
        from repro.sat import SolverStats

        stats = SolverStats()
        count = sum(
            1 for _ in iter_models(cnf, projection=projection, stats=stats)
        )
        _merge_stats(counters, stats)
    else:  # pre-optimization tree: no stats hook
        count = sum(1 for _ in iter_models(cnf, projection=projection))
    return counters, f"{count} projected models"


def wl_relational_orders(quick: bool) -> tuple[Counters, object]:
    """Total-order counting through the full relational translation
    (bench_substrate_sat's sibling workload in bench_substrate_relational)."""
    from repro.relational import Problem, TupleSet, acyclic, some, subset

    atoms = ["a", "b", "c", "d"] if quick else ["a", "b", "c", "d", "e"]
    problem = Problem(atoms)
    r = problem.declare("ord", 2)
    problem.constrain(acyclic(r))
    problem.constrain(subset(r.dot(r), r))
    for i, x in enumerate(atoms):
        for y in atoms[i + 1 :]:
            pair = TupleSet.pairs([(x, y)])
            rev = TupleSet.pairs([(y, x)])
            problem.constrain(some((r & pair) + (r & rev)))
    count = sum(1 for _ in problem.iter_instances())
    expected = 24 if quick else 120
    assert count == expected, (count, expected)
    counters: Counters = {}
    stats = getattr(problem, "last_solver_stats", None)
    if stats is not None:
        _merge_stats(counters, stats)
    return counters, f"{count} orders"


def wl_synthesize_sat(quick: bool) -> tuple[Counters, object]:
    """A serial transform-synthesize run with SAT-backed witness
    enumeration (paper bounds; the §IV-C pipeline end to end)."""
    from repro.synth.engine import default_config

    bound = 5 if quick else 6
    config_kwargs = dict(target_axiom="sc_per_loc")
    counters: Counters = {}
    if _has_witness_backend():
        from repro.synth import synthesize

        config = default_config(bound, witness_backend="sat", **config_kwargs)
        result = synthesize(config)
        for key in ("decisions", "propagations", "conflicts", "learned_clauses"):
            value = getattr(result.stats, "sat_" + key, 0)
            if value:
                counters[key] = value
    else:
        # Pre-optimization tree: no witness_backend knob yet.  Route the
        # shared pipeline through the SAT enumerator by hand so before and
        # after time the same computation.
        from repro.synth import engine as engine_module
        from repro.synth.engine import default_config as dc
        from repro.synth.sat_backend import enumerate_witnesses_sat

        config = dc(bound, **config_kwargs)
        saved = engine_module.enumerate_witnesses
        engine_module.enumerate_witnesses = enumerate_witnesses_sat
        try:
            result = engine_module.synthesize(config)
        finally:
            engine_module.enumerate_witnesses = saved
    return counters, f"bound={bound}: {result.count} ELTs"


def _has_solver_cores() -> bool:
    # True on trees where the solver grew selectable storage cores.
    try:
        from repro.sat import create_solver  # noqa: F401

        return True
    except ImportError:
        return False


def wl_core_lockstep_php(quick: bool) -> tuple[Counters, object]:
    """Pigeonhole on every runnable storage core (the C-accelerated core
    joins automatically when its extension is built): the cores must
    produce *equal* counters (lockstep contract), so the gate covers all
    of them; the note records the per-core wall times."""
    if not _has_solver_cores():
        return {}, "skipped (no solver cores on this tree)"
    from dataclasses import asdict

    from repro.sat import create_solver

    try:
        from repro.sat import SOLVER_CORES as cores
    except ImportError:  # pre-accel tree
        cores = ("object", "array")

    holes = 6 if quick else 7
    walls = {}
    stats_by_core = {}
    for core in cores:
        cnf = pigeonhole(holes)
        solver = create_solver(cnf, core=core)
        started = time.perf_counter()
        result = solver.solve()
        walls[core] = time.perf_counter() - started
        assert not result.satisfiable
        stats_by_core[core] = asdict(solver.stats)
    for core in cores:
        assert stats_by_core[core] == stats_by_core["array"], (
            f"storage core {core} diverged on php"
        )
    counters: Counters = {
        key: stats_by_core["array"][key]
        for key in ("decisions", "propagations", "conflicts", "learned_clauses")
    }
    timings = ", ".join(f"{core} {walls[core]:.3f}s" for core in cores)
    return counters, f"php({holes}): {timings}, counters equal"


def _session_queries(core: str, inprocess: bool, quick: bool) -> tuple[Counters, str]:
    """A long-lived solver answering many assumption queries over one hard
    (satisfiable) 3-SAT instance — the ProblemSession shape, where query
    boundaries give inprocessing its chances to fire once enough conflicts
    and learned clauses have accumulated."""
    from repro.sat import create_solver

    num_vars = 100
    cnf = random_3sat(num_vars, int(num_vars * 4.2), seed=6)
    solver = create_solver(cnf, core=core, inprocess=inprocess)
    assert solver.solve().satisfiable
    queries = 150 if quick else 300
    sat_count = 0
    for q in range(queries):
        a = (q * 7) % num_vars + 1
        b = (q * 13) % num_vars + 1
        assumptions = [a if q % 2 else -a]
        if b != a:
            assumptions.append(b if q % 3 else -b)
        if solver.solve(assumptions=assumptions).satisfiable:
            sat_count += 1
    counters: Counters = {}
    _merge_stats(counters, solver.stats)
    note = (
        f"{sat_count}/{queries} sat, {solver.stats.conflicts} conflicts, "
        f"{solver.stats.inprocessings} passes "
        f"({solver.stats.subsumed_clauses} subsumed, "
        f"{solver.stats.strengthened_clauses} strengthened, "
        f"{solver.stats.vivified_clauses} vivified)"
    )
    return counters, note


def wl_session_inprocess_off(quick: bool) -> tuple[Counters, object]:
    if not _has_solver_cores():
        return {}, "skipped (no solver cores on this tree)"
    return _session_queries("array", False, quick)


def wl_session_inprocess_on(quick: bool) -> tuple[Counters, object]:
    if not _has_solver_cores():
        return {}, "skipped (no solver cores on this tree)"
    return _session_queries("array", True, quick)


def wl_allsat_inprocess_on(quick: bool) -> tuple[Counters, object]:
    """The allsat_blocking_loop workload under the pipeline-default
    configuration (array core, inprocessing enabled) for comparison."""
    if not _has_solver_cores() or not _has_stats_hook():
        return {}, "skipped (no solver cores on this tree)"
    from repro.sat import SolverStats, solver_preferences

    cnf = random_3sat(20, 46, seed=3) if quick else random_3sat(24, 55, seed=3)
    counters: Counters = {}
    stats = SolverStats()
    with solver_preferences(core="array", inprocess=True):
        count = sum(1 for _ in iter_models(cnf, stats=stats))
    _merge_stats(counters, stats)
    return counters, f"{count} models, {stats.inprocessings} passes"


def wl_synthesize_explicit(quick: bool) -> tuple[Counters, object]:
    """The default explicit-enumerator synthesize run, for context (not a
    SAT workload; excluded from the speedup aggregate)."""
    from repro.synth import synthesize
    from repro.synth.engine import default_config

    bound = 5 if quick else 6
    result = synthesize(default_config(bound, target_axiom="sc_per_loc"))
    return {}, f"bound={bound}: {result.count} ELTs"


WORKLOADS: list[tuple[str, Callable[[bool], tuple[Counters, object]], bool]] = [
    # (name, fn, counts_toward_speedup_aggregate)
    ("pigeonhole_unsat", wl_pigeonhole, True),
    ("random_3sat_threshold", wl_random_3sat, True),
    ("allsat_blocking_loop", wl_allsat_blocking, True),
    ("allsat_projected", wl_allsat_projected, True),
    ("relational_total_orders", wl_relational_orders, True),
    ("synthesize_serial_sat_backend", wl_synthesize_sat, True),
    ("synthesize_serial_explicit", wl_synthesize_explicit, False),
    # Solver-core / inprocessing scenarios (gated against
    # benchmarks/baseline_inprocessing_quick.json in CI).
    ("solver_core_lockstep_php", wl_core_lockstep_php, True),
    ("session_queries_inprocess_off", wl_session_inprocess_off, True),
    ("session_queries_inprocess_on", wl_session_inprocess_on, True),
    ("allsat_blocking_inprocess_on", wl_allsat_inprocess_on, True),
]


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _solver_meta() -> dict:
    """Which propagation backend produced this run — stamped into the
    JSON so baselines are attributable to the core that made them."""
    try:
        from repro.sat import accel_status

        return accel_status()
    except ImportError:  # pre-accel tree
        return {"available": False}


def run_suite(quick: bool) -> dict:
    results: dict = {}
    for name, fn, gated in WORKLOADS:
        started = time.perf_counter()
        counters, note = fn(quick)
        wall = time.perf_counter() - started
        counter_total = sum(
            counters.get(k, 0) for k in ("decisions", "propagations", "conflicts")
        )
        results[name] = {
            "wall_s": round(wall, 6),
            "counters": counters,
            "counter_total": counter_total,
            "gated": gated,
            "note": str(note),
        }
        print(f"  {name:32s} {wall:9.3f}s  {note}")
    return results


def compare(
    current: dict,
    baseline: dict,
    max_regression: float,
    check_wall: bool,
    exact_counters: bool = False,
) -> tuple[dict, list[str]]:
    failures: list[str] = []
    speedups: dict = {}
    for name, entry in current.items():
        base = baseline.get(name)
        if base is None:
            continue
        ratio = base["wall_s"] / entry["wall_s"] if entry["wall_s"] > 0 else None
        speedups[name] = {
            "wall_speedup": round(ratio, 3) if ratio is not None else None,
        }
        if exact_counters and entry.get("gated") and base.get("counter_total"):
            if entry["counter_total"] != base["counter_total"]:
                failures.append(
                    f"{name}: counter total {entry['counter_total']} != "
                    f"baseline {base['counter_total']} (--check requires "
                    "exact deterministic-counter reproduction)"
                )
        if entry.get("gated") and base.get("counter_total"):
            counter_ratio = entry["counter_total"] / base["counter_total"]
            speedups[name]["counter_ratio"] = round(counter_ratio, 3)
            if counter_ratio > max_regression:
                failures.append(
                    f"{name}: counter total {entry['counter_total']} is "
                    f"{counter_ratio:.2f}x the baseline {base['counter_total']} "
                    f"(limit {max_regression}x)"
                )
        if check_wall and entry.get("gated") and base["wall_s"] > 0:
            wall_ratio = entry["wall_s"] / base["wall_s"]
            if wall_ratio > max_regression:
                failures.append(
                    f"{name}: wall time {entry['wall_s']:.3f}s is "
                    f"{wall_ratio:.2f}x the baseline {base['wall_s']:.3f}s "
                    f"(limit {max_regression}x)"
                )
    return speedups, failures


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller workloads")
    parser.add_argument("--out", default=None, help="write results JSON here")
    parser.add_argument(
        "--baseline", default=None, help="baseline JSON to compare/gate against"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail if counters (or wall with --check-wall) regress past this",
    )
    parser.add_argument(
        "--check-wall",
        action="store_true",
        help="also gate on wall time (only meaningful on comparable hardware)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="with --baseline: require EXACT counter reproduction for "
        "gated workloads (counters are deterministic and "
        "machine-independent, so any drift is a semantic change)",
    )
    parser.add_argument(
        "--merge-before",
        default=None,
        help="emit a {before, after, speedup} document using this JSON as 'before'",
    )
    args = parser.parse_args(argv)

    print(f"SAT substrate benchmark ({'quick' if args.quick else 'full'} mode)")
    results = run_suite(args.quick)
    document: dict = {
        "meta": {
            "mode": "quick" if args.quick else "full",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "solver": _solver_meta(),
        },
        "workloads": results,
    }

    status = 0
    if args.baseline:
        baseline_doc = json.loads(Path(args.baseline).read_text())
        baseline = baseline_doc.get("workloads", baseline_doc)
        speedups, failures = compare(
            results,
            baseline,
            args.max_regression,
            args.check_wall,
            exact_counters=args.check,
        )
        document["speedup_vs_baseline"] = speedups
        for name, entry in speedups.items():
            if entry.get("wall_speedup") is not None:
                print(f"  {name:32s} speedup {entry['wall_speedup']:.2f}x")
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1

    if args.merge_before:
        before_doc = json.loads(Path(args.merge_before).read_text())
        before = before_doc.get("workloads", before_doc)
        speedups, _ = compare(results, before, float("inf"), False)
        gated = [
            entry["wall_speedup"]
            for name, entry in speedups.items()
            if results[name].get("gated") and entry.get("wall_speedup")
        ]
        document = {
            "meta": document["meta"],
            "before": before,
            "after": results,
            "speedup": speedups,
            "aggregate_wall_speedup": (
                round(
                    sum(before[n]["wall_s"] for n in speedups if results[n]["gated"])
                    / max(
                        1e-9,
                        sum(
                            results[n]["wall_s"]
                            for n in speedups
                            if results[n]["gated"]
                        ),
                    ),
                    3,
                )
                if gated
                else None
            ),
        }
        print(f"aggregate wall speedup: {document['aggregate_wall_speedup']}x")

    if args.out:
        Path(args.out).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"[results written to {args.out}]")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
